#include "src/serve/server.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <future>
#include <optional>
#include <utility>

#include "src/model/serialize.h"
#include "src/model/zoo.h"
#include "src/obs/exposition.h"
#include "src/obs/metrics.h"
#include "src/tensor/quantizer.h"
#include "src/zkml/batched.h"
#include "src/zkml/sharded.h"

namespace zkml {
namespace serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

uint64_t MicrosBetween(SteadyClock::time_point a, SteadyClock::time_point b) {
  if (b <= a) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

double SecondsBetween(SteadyClock::time_point a, SteadyClock::time_point b) {
  return b <= a ? 0.0 : std::chrono::duration<double>(b - a).count();
}

// One bucket layout for every per-stage latency histogram: sub-millisecond
// admission waits through minute-long proofs.
const std::vector<double> kStageSecondsBuckets = {
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60};

}  // namespace

// One admitted prove job. The handler thread blocks on `done`; the worker
// fills exactly one of response/error before fulfilling the promise, so the
// future's happens-before edge publishes the result fields without a lock.
struct ZkmlServer::Job {
  uint64_t id = 0;
  uint64_t request_id = 0;
  ProveRequest request;
  uint32_t deadline_ms = 0;
  // The wire version the client spoke; responses (and coalescing
  // eligibility — a batched artifact needs a v3-aware reader) honour it.
  uint8_t wire_version = kWireVersion;

  // shared_ptr so the watchdog can hold the token while the worker runs.
  std::shared_ptr<CancelToken> cancel = std::make_shared<CancelToken>();
  SteadyClock::time_point enqueued;
  SteadyClock::time_point deadline_tp;
  std::atomic<bool> reaped{false};

  // Live progress for /statusz: the pipeline stage the worker is in and which
  // worker holds the job. Written by the worker, read by the admin thread.
  std::atomic<uint8_t> stage{static_cast<uint8_t>(WireStage::kAdmission)};
  std::atomic<int> worker{-1};
  // Sharded-prove progress (zero total = single-circuit job). shards_done is
  // bumped from pool threads as shard proofs land, read by /statusz.
  std::atomic<uint32_t> shards_total{0};
  std::atomic<uint32_t> shards_done{0};

  std::promise<void> done_promise;
  std::shared_future<void> done;

  bool ok = false;
  ProveResponse response;
  WireError error;
};

struct ZkmlServer::Connection {
  Socket sock;
  std::atomic<bool> finished{false};
};

// Server-local counters (stats() must not bleed across server instances in
// tests) mirrored into the process-global serve.* metrics on every bump.
struct ZkmlServer::Counters {
  struct Stat {
    std::atomic<uint64_t> value{0};
    obs::Counter* global = nullptr;
    void Inc(uint64_t d = 1) {
      value.fetch_add(d, std::memory_order_relaxed);
      global->Increment(d);
    }
    uint64_t Get() const { return value.load(std::memory_order_relaxed); }
  };

  Stat connections_accepted, connections_rejected, protocol_errors, slow_clients_closed;
  Stat jobs_accepted, jobs_completed, jobs_shed_overload, jobs_deadline_exceeded;
  Stat jobs_cancelled, jobs_rejected_malformed, jobs_failed_internal, watchdog_reaped;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* running_jobs = nullptr;
  obs::Histogram* job_seconds = nullptr;

  // Per-stage serve latency (admission = queue wait, respond = write-back).
  obs::Histogram* stage_admission = nullptr;
  obs::Histogram* stage_compile = nullptr;
  obs::Histogram* stage_witness = nullptr;
  obs::Histogram* stage_prove = nullptr;
  obs::Histogram* stage_respond = nullptr;

  // Rejections keyed by the WireStage named in the error frame (every
  // SendError lands in exactly one slot).
  static constexpr size_t kNumStages = 8;
  Stat rejections[kNumStages];

  Counters() {
    auto& reg = obs::MetricsRegistry::Global();
    connections_accepted.global = &reg.counter("serve.connections_accepted");
    connections_rejected.global = &reg.counter("serve.connections_rejected");
    protocol_errors.global = &reg.counter("serve.protocol_errors");
    slow_clients_closed.global = &reg.counter("serve.slow_clients_closed");
    jobs_accepted.global = &reg.counter("serve.jobs_accepted");
    jobs_completed.global = &reg.counter("serve.jobs_completed");
    jobs_shed_overload.global = &reg.counter("serve.jobs_shed_overload");
    jobs_deadline_exceeded.global = &reg.counter("serve.jobs_deadline_exceeded");
    jobs_cancelled.global = &reg.counter("serve.jobs_cancelled");
    jobs_rejected_malformed.global = &reg.counter("serve.jobs_rejected_malformed");
    jobs_failed_internal.global = &reg.counter("serve.jobs_failed_internal");
    watchdog_reaped.global = &reg.counter("serve.watchdog_reaped");
    queue_depth = &reg.gauge("serve.queue_depth");
    running_jobs = &reg.gauge("serve.running_jobs");
    job_seconds = &reg.histogram("serve.job_seconds",
                                 {0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 30, 60});
    stage_admission = &reg.histogram("serve.stage_seconds.admission", kStageSecondsBuckets);
    stage_compile = &reg.histogram("serve.stage_seconds.compile", kStageSecondsBuckets);
    stage_witness = &reg.histogram("serve.stage_seconds.witness", kStageSecondsBuckets);
    stage_prove = &reg.histogram("serve.stage_seconds.prove", kStageSecondsBuckets);
    stage_respond = &reg.histogram("serve.stage_seconds.respond", kStageSecondsBuckets);
    for (size_t i = 0; i < kNumStages; ++i) {
      rejections[i].global = &reg.counter(
          std::string("serve.rejections.") + WireStageName(static_cast<WireStage>(i)));
    }
  }

  Stat& RejectionsFor(WireStage stage) {
    const size_t i = static_cast<size_t>(stage);
    return rejections[i < kNumStages ? i : kNumStages - 1];
  }
};

ZkmlServer::ZkmlServer(const ServeOptions& options)
    : options_(options),
      cache_(options.cache_capacity),
      trace_ring_(options.trace_ring_capacity),
      counters_(std::make_unique<Counters>()) {}

ZkmlServer::~ZkmlServer() { Stop(); }

Status ZkmlServer::Start() {
  ZKML_ASSIGN_OR_RETURN(listener_, ListenSocket::Listen(options_.port));
  started_at_ = SteadyClock::now();
  if (!options_.event_log_path.empty()) {
    ZKML_ASSIGN_OR_RETURN(
        event_log_, obs::EventLog::Open(options_.event_log_path, options_.event_log_max_bytes));
  }
  if (options_.admin_port >= 0) {
    ZKML_RETURN_IF_ERROR(StartAdmin());
  }
  started_.store(true, std::memory_order_relaxed);
  acceptor_ = std::thread(&ZkmlServer::AcceptLoop, this);
  const int n = std::max(1, options_.num_workers);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(&ZkmlServer::WorkerLoop, this, i);
  }
  watchdog_ = std::thread(&ZkmlServer::WatchdogLoop, this);
  obs::Json fields = obs::Json::Object();
  fields.Set("port", static_cast<uint64_t>(port()));
  fields.Set("admin_port", static_cast<uint64_t>(admin_port()));
  fields.Set("workers", static_cast<uint64_t>(n));
  fields.Set("queue_capacity", static_cast<uint64_t>(options_.queue_capacity));
  LogEvent("server_started", std::move(fields));
  return Status::Ok();
}

void ZkmlServer::RequestDrain() {
  if (!draining_.exchange(true, std::memory_order_relaxed)) {
    LogEvent("drain_started", obs::Json::Object());
  }
}

void ZkmlServer::Stop() {
  if (!started_.exchange(false)) {
    return;
  }
  RequestDrain();

  // Let queued + running jobs finish within the drain budget, then cancel
  // whatever remains (cancelled jobs still flow through a worker so their
  // handlers get an explicit CANCELLED response).
  const auto drain_deadline =
      SteadyClock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
  bool cancelled_stragglers = false;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.empty() && running_.empty()) {
        break;
      }
      if (!cancelled_stragglers && SteadyClock::now() >= drain_deadline) {
        for (auto& job : queue_) job->cancel->Cancel();
        for (auto& job : running_) job->cancel->Cancel();
        cancelled_stragglers = true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Workers exit once the stop flag is up and the queue is dry.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // Handler threads notice stopping_ at their next poll tick; every pending
  // future is already fulfilled, so the longest wait is one io_timeout write.
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& t : conn_threads_) {
      if (t.joinable()) t.join();
    }
    conn_threads_.clear();
  }
  if (watchdog_.joinable()) watchdog_.join();
  listener_.Close();
  PublishMetrics();

  obs::Json fields = obs::Json::Object();
  fields.Set("jobs_completed", counters_->jobs_completed.Get());
  fields.Set("uptime_s", SecondsBetween(started_at_, SteadyClock::now()));
  LogEvent("server_stopped", std::move(fields));
  // The admin plane outlives the prover path so operators can watch the drain;
  // it goes down last.
  if (admin_ != nullptr) {
    admin_->Stop();
  }
}

ServerStats ZkmlServer::stats() const {
  ServerStats s;
  const Counters& c = *counters_;
  s.connections_accepted = c.connections_accepted.Get();
  s.connections_rejected = c.connections_rejected.Get();
  s.protocol_errors = c.protocol_errors.Get();
  s.slow_clients_closed = c.slow_clients_closed.Get();
  s.jobs_accepted = c.jobs_accepted.Get();
  s.jobs_completed = c.jobs_completed.Get();
  s.jobs_shed_overload = c.jobs_shed_overload.Get();
  s.jobs_deadline_exceeded = c.jobs_deadline_exceeded.Get();
  s.jobs_cancelled = c.jobs_cancelled.Get();
  s.jobs_rejected_malformed = c.jobs_rejected_malformed.Get();
  s.jobs_failed_internal = c.jobs_failed_internal.Get();
  s.watchdog_reaped = c.watchdog_reaped.Get();
  const CacheStats cs = cache_.stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(queue_mu_));
    s.queue_depth = queue_.size();
    s.running_jobs = running_.size();
  }
  s.open_connections = open_connections_.load(std::memory_order_relaxed);
  return s;
}

void ZkmlServer::PublishMetrics() {
  size_t depth, running;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = queue_.size();
    running = running_.size();
  }
  counters_->queue_depth->Set(static_cast<double>(depth));
  counters_->running_jobs->Set(static_cast<double>(running));
}

Status ZkmlServer::StartAdmin() {
  AdminOptions opts;
  opts.port = static_cast<uint16_t>(options_.admin_port);
  admin_ = std::make_unique<AdminServer>(opts);
  admin_->AddRoute("/metrics", "text/plain; version=0.0.4",
                   [this] { return std::make_pair(200, MetricsText()); });
  admin_->AddRoute("/healthz", "text/plain", [this] {
    return draining() ? std::make_pair(503, std::string("draining\n"))
                      : std::make_pair(200, std::string("ok\n"));
  });
  admin_->AddRoute("/statusz", "application/json",
                   [this] { return std::make_pair(200, StatusJson().DumpPretty() + "\n"); });
  admin_->AddRoute("/tracez", "application/json", [this] {
    obs::Json doc = obs::Json::Object();
    doc.Set("schema", "zkml.tracez/v1");
    doc.Set("capacity", static_cast<uint64_t>(trace_ring_.capacity()));
    doc.Set("sampled_total", trace_ring_.added());
    obs::Json traces = obs::Json::Array();
    for (obs::Json& t : trace_ring_.Snapshot()) {
      traces.Append(std::move(t));
    }
    doc.Set("traces", std::move(traces));
    return std::make_pair(200, doc.DumpPretty() + "\n");
  });
  return admin_->Start();
}

std::string ZkmlServer::MetricsText() const {
  // A scrape observes the same freshness the watchdog maintains: gauges and
  // rate windows are re-sampled at the moment of exposition.
  const_cast<ZkmlServer*>(this)->PublishMetrics();
  SampleRates();
  return obs::RenderPrometheus(obs::MetricsRegistry::Global().Snapshot());
}

void ZkmlServer::SampleRates() const {
  const auto now = obs::RateWindows::Clock::now();
  const Counters& c = *counters_;
  rates_.Sample("jobs_accepted", c.jobs_accepted.Get(), now);
  rates_.Sample("jobs_completed", c.jobs_completed.Get(), now);
  rates_.Sample("jobs_shed_overload", c.jobs_shed_overload.Get(), now);
  rates_.Sample("jobs_deadline_exceeded", c.jobs_deadline_exceeded.Get(), now);
  rates_.Sample("protocol_errors", c.protocol_errors.Get(), now);
  rates_.Sample("connections_accepted", c.connections_accepted.Get(), now);
}

void ZkmlServer::LogEvent(const std::string& event, obs::Json fields) const {
  if (event_log_ != nullptr) {
    event_log_->Log(event, std::move(fields));
  }
}

namespace {

obs::Json RatesJson(const obs::RateWindows::Rates& r) {
  obs::Json j = obs::Json::Object();
  j.Set("1s", r.per_sec_1s);
  j.Set("10s", r.per_sec_10s);
  j.Set("60s", r.per_sec_60s);
  return j;
}

// p50/p90/p99 summary for one histogram out of a registry snapshot; null
// when the histogram has not been registered yet.
obs::Json QuantilesJson(const obs::MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [hname, h] : snap.histograms) {
    if (hname != name) continue;
    obs::Json j = obs::Json::Object();
    j.Set("count", h.count);
    j.Set("sum_s", h.sum);
    j.Set("p50_s", obs::HistogramQuantile(h, 0.5));
    j.Set("p90_s", obs::HistogramQuantile(h, 0.9));
    j.Set("p99_s", obs::HistogramQuantile(h, 0.99));
    return j;
  }
  return obs::Json();
}

}  // namespace

obs::Json ZkmlServer::StatusJson() const {
  const auto now = SteadyClock::now();
  SampleRates();

  obs::Json doc = obs::Json::Object();
  doc.Set("schema", "zkml.statusz/v1");
  doc.Set("uptime_s", SecondsBetween(started_at_, now));
  doc.Set("draining", draining());
  doc.Set("port", static_cast<uint64_t>(port()));
  doc.Set("admin_port", static_cast<uint64_t>(admin_port()));

  // Worker table: every worker is either idle or holds exactly one running
  // job; queued jobs have no worker yet and show up only in queue_depth.
  const int n = std::max(1, options_.num_workers);
  std::vector<obs::Json> worker_rows(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    obs::Json row = obs::Json::Object();
    row.Set("worker", static_cast<uint64_t>(i));
    row.Set("state", "idle");
    worker_rows[static_cast<size_t>(i)] = std::move(row);
  }
  size_t queue_depth = 0, running_jobs = 0;
  {
    auto& mu = const_cast<std::mutex&>(queue_mu_);
    std::lock_guard<std::mutex> lock(mu);
    queue_depth = queue_.size();
    running_jobs = running_.size();
    for (const auto& job : running_) {
      const int w = job->worker.load(std::memory_order_relaxed);
      if (w < 0 || w >= n) continue;
      obs::Json row = obs::Json::Object();
      row.Set("worker", static_cast<uint64_t>(w));
      row.Set("state", "running");
      row.Set("job_id", job->id);
      row.Set("request_id", job->request_id);
      row.Set("stage", WireStageName(static_cast<WireStage>(
                           job->stage.load(std::memory_order_relaxed))));
      const uint32_t shards_total = job->shards_total.load(std::memory_order_relaxed);
      if (shards_total > 0) {
        // Per-shard stage marker, e.g. "2/4" = two of four shard proofs done.
        row.Set("shard", std::to_string(job->shards_done.load(std::memory_order_relaxed)) +
                             "/" + std::to_string(shards_total));
      }
      row.Set("elapsed_s", SecondsBetween(job->enqueued, now));
      row.Set("deadline_in_s", SecondsBetween(now, job->deadline_tp));
      row.Set("reaped", job->reaped.load(std::memory_order_relaxed));
      worker_rows[static_cast<size_t>(w)] = std::move(row);
    }
  }
  obs::Json workers = obs::Json::Array();
  for (auto& row : worker_rows) {
    workers.Append(std::move(row));
  }
  doc.Set("workers", std::move(workers));

  obs::Json queue = obs::Json::Object();
  queue.Set("depth", static_cast<uint64_t>(queue_depth));
  queue.Set("capacity", static_cast<uint64_t>(options_.queue_capacity));
  queue.Set("running", static_cast<uint64_t>(running_jobs));
  queue.Set("open_connections",
            static_cast<uint64_t>(open_connections_.load(std::memory_order_relaxed)));
  doc.Set("queue", std::move(queue));

  const CacheStats cs = cache_.stats();
  obs::Json cache = obs::Json::Object();
  cache.Set("entries", static_cast<uint64_t>(cs.entries));
  cache.Set("capacity", static_cast<uint64_t>(options_.cache_capacity));
  cache.Set("hits", cs.hits);
  cache.Set("misses", cs.misses);
  cache.Set("evictions", cs.evictions);
  doc.Set("cache", std::move(cache));

  const Counters& c = *counters_;
  obs::Json counters = obs::Json::Object();
  counters.Set("connections_accepted", c.connections_accepted.Get());
  counters.Set("connections_rejected", c.connections_rejected.Get());
  counters.Set("protocol_errors", c.protocol_errors.Get());
  counters.Set("slow_clients_closed", c.slow_clients_closed.Get());
  counters.Set("jobs_accepted", c.jobs_accepted.Get());
  counters.Set("jobs_completed", c.jobs_completed.Get());
  counters.Set("jobs_shed_overload", c.jobs_shed_overload.Get());
  counters.Set("jobs_deadline_exceeded", c.jobs_deadline_exceeded.Get());
  counters.Set("jobs_cancelled", c.jobs_cancelled.Get());
  counters.Set("jobs_rejected_malformed", c.jobs_rejected_malformed.Get());
  counters.Set("jobs_failed_internal", c.jobs_failed_internal.Get());
  counters.Set("watchdog_reaped", c.watchdog_reaped.Get());
  doc.Set("counters", std::move(counters));

  obs::Json rejections = obs::Json::Object();
  for (size_t i = 0; i < Counters::kNumStages; ++i) {
    rejections.Set(WireStageName(static_cast<WireStage>(i)), c.rejections[i].Get());
  }
  doc.Set("rejections_by_stage", std::move(rejections));

  obs::Json rates = obs::Json::Object();
  for (const char* name : {"jobs_accepted", "jobs_completed", "jobs_shed_overload",
                           "jobs_deadline_exceeded", "protocol_errors",
                           "connections_accepted"}) {
    rates.Set(name, RatesJson(rates_.RatesFor(name, obs::RateWindows::Clock::now())));
  }
  doc.Set("rates_per_sec", std::move(rates));

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  obs::Json latency = obs::Json::Object();
  latency.Set("job", QuantilesJson(snap, "serve.job_seconds"));
  for (const char* stage : {"admission", "compile", "witness", "prove", "respond"}) {
    latency.Set(stage, QuantilesJson(snap, std::string("serve.stage_seconds.") + stage));
  }
  doc.Set("latency_seconds", std::move(latency));

  obs::Json tracez = obs::Json::Object();
  tracez.Set("capacity", static_cast<uint64_t>(trace_ring_.capacity()));
  tracez.Set("held", static_cast<uint64_t>(trace_ring_.size()));
  tracez.Set("sampled_total", trace_ring_.added());
  tracez.Set("sample_every", static_cast<uint64_t>(options_.trace_sample_every));
  doc.Set("traces", std::move(tracez));

  obs::Json events = obs::Json::Object();
  if (event_log_ != nullptr) {
    const obs::EventLog::Stats es = event_log_->stats();
    events.Set("path", event_log_->path());
    events.Set("events", es.events);
    events.Set("rotations", es.rotations);
    events.Set("write_failures", es.write_failures);
  } else {
    events.Set("path", obs::Json());
  }
  doc.Set("event_log", std::move(events));

  if (admin_ != nullptr) {
    doc.Set("admin_requests_served", admin_->requests_served());
  }
  return doc;
}

void ZkmlServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    StatusOr<Socket> sock = listener_.Accept(options_.poll_interval_ms);
    if (!sock.ok()) {
      if (sock.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // poll tick: re-check the stop flag
      }
      break;  // listener closed
    }
    if (draining_.load(std::memory_order_relaxed)) {
      continue;  // drop: socket closes, peer sees EOF instead of a hang
    }
    if (open_connections_.load(std::memory_order_relaxed) >= options_.max_connections) {
      counters_->connections_rejected.Inc();
      continue;
    }
    counters_->connections_accepted.Inc();
    auto conn = std::make_shared<Connection>();
    conn->sock = std::move(*sock);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mu_);
    // Reap handler threads that already finished so a long-lived daemon does
    // not accumulate one zombie std::thread per past connection.
    // (Pairs finished-flag checks with the thread at the same index.)
    for (size_t i = 0; i < conn_threads_.size();) {
      if (conn_refs_[i]->finished.load(std::memory_order_acquire)) {
        conn_threads_[i].join();
        conn_threads_[i] = std::move(conn_threads_.back());
        conn_threads_.pop_back();
        conn_refs_[i] = std::move(conn_refs_.back());
        conn_refs_.pop_back();
      } else {
        ++i;
      }
    }
    conn_refs_.push_back(conn);
    conn_threads_.emplace_back([this, conn] {
      HandleConnection(conn);
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
      conn->finished.store(true, std::memory_order_release);
    });
  }
}

bool ZkmlServer::SendFrame(Connection& conn, FrameType type, uint64_t request_id,
                           const std::vector<uint8_t>& payload, uint8_t version) {
  std::vector<uint8_t> out;
  EncodeFrame(&out, type, request_id, payload, version);
  Status s = conn.sock.WriteFull(out.data(), out.size(), options_.io_timeout_ms);
  if (!s.ok()) {
    if (s.code() == StatusCode::kDeadlineExceeded) {
      counters_->slow_clients_closed.Inc();
    }
    return false;
  }
  return true;
}

bool ZkmlServer::SendError(Connection& conn, uint64_t request_id, const WireError& err,
                           uint8_t version) {
  counters_->RejectionsFor(err.stage).Inc();
  return SendFrame(conn, FrameType::kError, request_id, EncodeWireError(err), version);
}

void ZkmlServer::HandleConnection(std::shared_ptr<Connection> conn) {
  uint8_t header[kFrameHeaderSize];
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Idle wait for the first byte of a frame polls the stop flag; once bytes
    // start flowing the rest of the frame must land within io_timeout_ms, so
    // a slowloris peer is cut off rather than pinning this thread.
    Status s = conn->sock.ReadFull(header, 1, options_.poll_interval_ms);
    if (!s.ok()) {
      if (s.code() == StatusCode::kDeadlineExceeded) {
        continue;  // idle connection
      }
      return;  // peer closed or socket error
    }
    s = conn->sock.ReadFull(header + 1, kFrameHeaderSize - 1, options_.io_timeout_ms);
    if (!s.ok()) {
      if (s.code() == StatusCode::kDeadlineExceeded) {
        counters_->slow_clients_closed.Inc();
      }
      return;
    }

    WireErrorCode wire_code = WireErrorCode::kInternal;
    StatusOr<FrameHeader> hdr =
        DecodeFrameHeader(header, options_.max_frame_bytes, &wire_code);
    if (!hdr.ok()) {
      // The byte stream cannot be resynchronized after a corrupt header:
      // answer (request id 0 — the id field is untrusted garbage) and close.
      counters_->protocol_errors.Inc();
      SendError(*conn, 0, {wire_code, WireStage::kFrameHeader, hdr.status().message()});
      return;
    }

    std::vector<uint8_t> payload(hdr->payload_len);
    if (hdr->payload_len > 0) {
      s = conn->sock.ReadFull(payload.data(), payload.size(), options_.io_timeout_ms);
      if (!s.ok()) {
        if (s.code() == StatusCode::kDeadlineExceeded) {
          counters_->slow_clients_closed.Inc();
        }
        return;
      }
    }
    Status crc = CheckPayloadCrc(*hdr, payload);
    if (!crc.ok()) {
      counters_->protocol_errors.Inc();
      SendError(*conn, hdr->request_id,
                {WireErrorCode::kBadCrc, WireStage::kFramePayload, crc.message()});
      return;  // payload bytes are untrustworthy — close
    }

    switch (hdr->type) {
      case FrameType::kPing:
        if (!SendFrame(*conn, FrameType::kPong, hdr->request_id, {}, hdr->version)) return;
        continue;
      case FrameType::kProveRequest:
        break;
      default:
        // Server-to-client frame types arriving at the server are misuse.
        counters_->protocol_errors.Inc();
        SendError(*conn, hdr->request_id,
                  {WireErrorCode::kBadFrameType, WireStage::kFrameHeader,
                   "frame type is not a client request"},
                  hdr->version);
        return;
    }

    // The payload is decoded against the version the frame declared: a
    // down-level frame carrying fields it never defined is rejected here.
    StatusOr<ProveRequest> req = DecodeProveRequest(payload, hdr->version);
    if (!req.ok()) {
      // Structurally invalid payload behind a valid CRC: the framing is still
      // sound, so reject the request but keep the connection.
      counters_->jobs_rejected_malformed.Inc();
      if (!SendError(*conn, hdr->request_id,
                     {WireErrorCode::kMalformedRequest, WireStage::kFramePayload,
                      req.status().message()},
                     hdr->version)) {
        return;
      }
      continue;
    }

    WireError admit_err;
    std::shared_ptr<Job> job =
        AdmitJob(std::move(*req), hdr->request_id, hdr->version, &admit_err);
    if (job == nullptr) {
      if (!SendError(*conn, hdr->request_id, admit_err, hdr->version)) return;
      continue;
    }

    // Bounded wait: the job's deadline plus the watchdog grace guarantee the
    // worker fulfills the promise.
    job->done.wait();
    const auto respond_start = SteadyClock::now();
    bool sent;
    if (job->ok) {
      sent = SendFrame(*conn, FrameType::kProveResponse, hdr->request_id,
                       EncodeProveResponse(job->response, hdr->version), hdr->version);
    } else {
      sent = SendError(*conn, hdr->request_id, job->error, hdr->version);
    }
    counters_->stage_respond->Record(SecondsBetween(respond_start, SteadyClock::now()));
    if (!sent) return;
  }
}

std::shared_ptr<ZkmlServer::Job> ZkmlServer::AdmitJob(ProveRequest request,
                                                      uint64_t request_id,
                                                      uint8_t wire_version, WireError* err) {
  auto job = std::make_shared<Job>();
  job->id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  job->request_id = request_id;
  job->wire_version = wire_version;
  job->deadline_ms = request.deadline_ms == 0
                         ? options_.default_deadline_ms
                         : std::min(request.deadline_ms, options_.max_deadline_ms);
  job->request = std::move(request);
  job->done = job->done_promise.get_future().share();
  job->enqueued = SteadyClock::now();
  // The deadline clock starts at admission: queue wait, compile, witness, and
  // proving all spend from the same budget.
  job->deadline_tp = job->enqueued + std::chrono::milliseconds(job->deadline_ms);
  job->cancel->SetDeadline(job->deadline_tp);

  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (draining_.load(std::memory_order_relaxed)) {
      *err = {WireErrorCode::kShuttingDown, WireStage::kAdmission,
              "daemon is draining; no new work accepted"};
      return nullptr;
    }
    if (queue_.size() >= options_.queue_capacity) {
      counters_->jobs_shed_overload.Inc();
      *err = {WireErrorCode::kOverloaded, WireStage::kAdmission,
              "job queue full (" + std::to_string(queue_.size()) + " queued); retry later"};
      depth = queue_.size();
      job = nullptr;
    } else {
      queue_.push_back(job);
      counters_->jobs_accepted.Inc();
      depth = queue_.size();
    }
  }
  // Event I/O stays outside queue_mu_ so a slow disk never blocks workers.
  obs::Json fields = obs::Json::Object();
  if (job != nullptr) fields.Set("job_id", job->id);
  fields.Set("request_id", request_id);
  fields.Set("queue_depth", static_cast<uint64_t>(depth));
  if (job == nullptr) {
    LogEvent("job_shed", std::move(fields));
    return nullptr;
  }
  fields.Set("deadline_ms", static_cast<uint64_t>(job->deadline_ms));
  LogEvent("job_admitted", std::move(fields));
  queue_cv_.notify_one();
  return job;
}

void ZkmlServer::WorkerLoop(int worker_index) {
  // A job is coalescable when it asks for exactly one inference of one
  // circuit and its client can read a zkml.batched_proof/v1 response (v3+).
  const auto coalescable = [](const Job& j) {
    return j.wire_version >= 3 && j.request.shards <= 1 && j.request.batch <= 1;
  };
  for (;;) {
    std::vector<std::shared_ptr<Job>> group;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (queue_.empty()) {
        return;  // stopping_ and nothing left to drain
      }
      group.push_back(std::move(queue_.front()));
      queue_.pop_front();
      group.front()->worker.store(worker_index, std::memory_order_relaxed);
      running_.push_back(group.front());
      // Request coalescing: claim queued jobs for the same (model, backend)
      // so one batched circuit proves them all. Only whole jobs are claimed —
      // anything incompatible stays queued for another worker.
      if (options_.coalesce_max > 1 && coalescable(*group.front())) {
        const Job& lead = *group.front();
        for (auto it = queue_.begin();
             it != queue_.end() && group.size() < options_.coalesce_max;) {
          Job& j = **it;
          if (coalescable(j) && j.request.backend == lead.request.backend &&
              j.request.model_text == lead.request.model_text) {
            j.worker.store(worker_index, std::memory_order_relaxed);
            running_.push_back(*it);
            group.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }

    if (group.size() == 1) {
      ExecuteJob(group.front());
    } else {
      ExecuteCoalescedJobs(group);
    }

    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      for (const auto& job : group) {
        running_.erase(std::remove(running_.begin(), running_.end(), job), running_.end());
      }
    }
    for (const auto& job : group) {
      job->done_promise.set_value();
    }
  }
}

void ZkmlServer::ExecuteJob(const std::shared_ptr<Job>& job) {
  // Trace sampling: every Nth admitted job runs under its own Tracer; the
  // scope must close before export so all spans are complete.
  const bool sampled = options_.trace_sample_every > 0 &&
                       (job->id - 1) % options_.trace_sample_every == 0;
  std::optional<obs::Tracer> tracer;
  if (sampled) tracer.emplace();
  {
    std::optional<obs::TracerScope> scope;
    if (tracer) scope.emplace(&*tracer);
    ExecuteJobInner(job);
  }
  if (tracer) {
    obs::Json doc = tracer->ToReportJson();
    doc.Set("job_id", job->id);
    doc.Set("request_id", job->request_id);
    doc.Set("outcome", job->ok ? "ok" : WireErrorCodeName(job->error.code));
    if (!job->ok) doc.Set("error_stage", WireStageName(job->error.stage));
    trace_ring_.Add(std::move(doc));
  }

  if (event_log_ != nullptr) {
    obs::Json fields = obs::Json::Object();
    fields.Set("job_id", job->id);
    fields.Set("request_id", job->request_id);
    fields.Set("elapsed_s", SecondsBetween(job->enqueued, SteadyClock::now()));
    const char* event = "job_completed";
    if (!job->ok) {
      fields.Set("error", WireErrorCodeName(job->error.code));
      fields.Set("stage", WireStageName(job->error.stage));
      switch (job->error.code) {
        case WireErrorCode::kDeadlineExceeded: event = "job_deadline_exceeded"; break;
        case WireErrorCode::kCancelled:
          event = job->reaped.load(std::memory_order_relaxed) ? "job_reaped" : "job_cancelled";
          break;
        default: event = "job_failed"; break;
      }
    }
    LogEvent(event, std::move(fields));
  }
}

void ZkmlServer::ExecuteJobInner(const std::shared_ptr<Job>& job) {
  const auto started = SteadyClock::now();
  const uint64_t queue_micros = MicrosBetween(job->enqueued, started);
  counters_->stage_admission->Record(static_cast<double>(queue_micros) / 1e6);

  auto fail = [&](WireErrorCode code, WireStage stage, std::string message) {
    job->ok = false;
    job->error = {code, stage, std::move(message)};
  };
  // Maps a cancellation Status onto the wire: watchdog/drain Cancel() →
  // CANCELLED, expired budget → DEADLINE_EXCEEDED. The Status message names
  // the checkpoint that noticed (e.g. "deadline exceeded at quotient").
  auto fail_cancel = [&](const Status& s, WireStage stage) {
    if (s.code() == StatusCode::kCancelled) {
      counters_->jobs_cancelled.Inc();
      fail(WireErrorCode::kCancelled, stage,
           job->reaped.load(std::memory_order_relaxed) ? "reaped by watchdog: " + s.message()
                                                       : s.message());
    } else {
      counters_->jobs_deadline_exceeded.Inc();
      fail(WireErrorCode::kDeadlineExceeded, stage, s.message());
    }
  };

  // A job whose budget evaporated in the queue is shed before any work.
  Status live = job->cancel->Check("queue-wait");
  if (!live.ok()) {
    fail_cancel(live, WireStage::kAdmission);
    return;
  }

  job->stage.store(static_cast<uint8_t>(WireStage::kModelParse), std::memory_order_relaxed);
  StatusOr<Model> model = DeserializeModel(job->request.model_text);
  if (!model.ok()) {
    counters_->jobs_rejected_malformed.Inc();
    fail(WireErrorCode::kMalformedModel, WireStage::kModelParse, model.status().message());
    return;
  }

  if (job->request.batch > 1 && job->request.shards > 1) {
    counters_->jobs_rejected_malformed.Inc();
    fail(WireErrorCode::kMalformedRequest, WireStage::kModelParse,
         "request asks for both sharded (" + std::to_string(job->request.shards) +
             ") and batched (" + std::to_string(job->request.batch) +
             ") proving; pick one");
    return;
  }

  // Batched multi-inference proving: one circuit proves `batch` inferences
  // and the response carries a zkml.batched_proof/v1 artifact.
  if (job->request.batch > 1) {
    ExecuteBatchedJob(job, *model, job->request.batch, queue_micros, started);
    return;
  }

  // Sharded proving takes its own pipeline: per-shard compilations flow
  // through the cache under shard-suffixed keys, and the response carries a
  // zkml.sharded_proof/v1 artifact. A request for >1 shards on a model whose
  // graph admits no cut falls back to the single-circuit path (shards = 1 in
  // the response tells the client what actually ran).
  if (job->request.shards > 1) {
    const size_t k = ResolveShardCount(*model, job->request.shards);
    if (k > 1) {
      ExecuteShardedJob(job, *model, k, queue_micros, started);
      return;
    }
  }

  job->stage.store(static_cast<uint8_t>(WireStage::kCompile), std::memory_order_relaxed);
  const auto compile_start = SteadyClock::now();
  const std::string key =
      ModelHashHex(job->request.model_text) + (job->request.backend == 1 ? ":ipa" : ":kzg");
  bool cache_hit = true;
  StatusOr<std::shared_ptr<const CompiledModel>> compiled = [&] {
    obs::Span span("serve.compile");
    return cache_.GetOrCompile(key, [&]() -> StatusOr<std::shared_ptr<const CompiledModel>> {
      cache_hit = false;
      ZkmlOptions zo;
      zo.backend = job->request.backend == 1 ? PcsKind::kIpa : PcsKind::kKzg;
      zo.optimizer.backend = zo.backend;
      zo.optimizer.min_columns = options_.optimizer_min_columns;
      zo.optimizer.max_columns = options_.optimizer_max_columns;
      zo.optimizer.max_k = options_.optimizer_max_k;
      return std::make_shared<const CompiledModel>(CompileModel(*model, zo));
    });
  }();
  counters_->stage_compile->Record(SecondsBetween(compile_start, SteadyClock::now()));
  if (!compiled.ok()) {
    counters_->jobs_failed_internal.Inc();
    fail(WireErrorCode::kInternal, WireStage::kCompile, compiled.status().message());
    return;
  }
  live = job->cancel->Check("compile");
  if (!live.ok()) {
    fail_cancel(live, WireStage::kCompile);
    return;
  }

  job->stage.store(static_cast<uint8_t>(WireStage::kWitness), std::memory_order_relaxed);
  const auto witness_start = SteadyClock::now();
  const Model& m = (*compiled)->model;
  Tensor<int64_t> input_q;
  {
    obs::Span span("serve.witness");
    if (!job->request.input.empty()) {
      if (static_cast<int64_t>(job->request.input.size()) != m.input_shape.NumElements()) {
        counters_->jobs_rejected_malformed.Inc();
        fail(WireErrorCode::kInputMismatch, WireStage::kWitness,
             "input has " + std::to_string(job->request.input.size()) +
                 " elements, model wants " + std::to_string(m.input_shape.NumElements()));
        return;
      }
      input_q = Tensor<int64_t>(m.input_shape, std::move(job->request.input));
    } else {
      input_q = QuantizeTensor(SyntheticInput(m, job->request.seed), m.quant);
    }
  }
  counters_->stage_witness->Record(SecondsBetween(witness_start, SteadyClock::now()));

  job->stage.store(static_cast<uint8_t>(WireStage::kProve), std::memory_order_relaxed);
  const auto prove_start = SteadyClock::now();
  StatusOr<ZkmlProof> proof = [&] {
    obs::Span span("serve.prove");
    return ProveCancellable(**compiled, input_q, job->cancel.get());
  }();
  counters_->stage_prove->Record(SecondsBetween(prove_start, SteadyClock::now()));
  if (!proof.ok()) {
    if (proof.status().code() == StatusCode::kCancelled ||
        proof.status().code() == StatusCode::kDeadlineExceeded) {
      fail_cancel(proof.status(), WireStage::kProve);
    } else {
      counters_->jobs_failed_internal.Inc();
      fail(WireErrorCode::kInternal, WireStage::kProve, proof.status().message());
    }
    return;
  }

  if (!options_.report_dir.empty()) {
    WriteJobReport(*job, **compiled, *proof);
  }

  job->stage.store(static_cast<uint8_t>(WireStage::kRespond), std::memory_order_relaxed);
  const auto finished = SteadyClock::now();
  job->response.proof = std::move(proof->bytes);
  job->response.instance = std::move(proof->instance);
  job->response.output = proof->output_q.ToVector();
  job->response.queue_micros = queue_micros;
  job->response.prove_micros = MicrosBetween(started, finished);
  job->response.cache_hit = cache_hit ? 1 : 0;
  job->response.shards = 1;
  job->ok = true;
  counters_->jobs_completed.Inc();
  counters_->job_seconds->Record(
      std::chrono::duration<double>(finished - job->enqueued).count());
}

void ZkmlServer::ExecuteShardedJob(const std::shared_ptr<Job>& job, const Model& model,
                                   size_t num_shards, uint64_t queue_micros,
                                   SteadyClock::time_point started) {
  auto fail = [&](WireErrorCode code, WireStage stage, std::string message) {
    job->ok = false;
    job->error = {code, stage, std::move(message)};
  };
  auto fail_cancel = [&](const Status& s, WireStage stage) {
    if (s.code() == StatusCode::kCancelled) {
      counters_->jobs_cancelled.Inc();
      fail(WireErrorCode::kCancelled, stage,
           job->reaped.load(std::memory_order_relaxed) ? "reaped by watchdog: " + s.message()
                                                       : s.message());
    } else {
      counters_->jobs_deadline_exceeded.Inc();
      fail(WireErrorCode::kDeadlineExceeded, stage, s.message());
    }
  };

  job->shards_total.store(static_cast<uint32_t>(num_shards), std::memory_order_relaxed);
  job->stage.store(static_cast<uint8_t>(WireStage::kCompile), std::memory_order_relaxed);
  const auto compile_start = SteadyClock::now();

  ZkmlOptions zo;
  zo.backend = job->request.backend == 1 ? PcsKind::kIpa : PcsKind::kKzg;
  zo.optimizer.backend = zo.backend;
  zo.optimizer.min_columns = options_.optimizer_min_columns;
  zo.optimizer.max_columns = options_.optimizer_max_columns;
  zo.optimizer.max_k = options_.optimizer_max_k;

  StatusOr<ModelPartition> partition = PartitionModel(model, num_shards);
  if (!partition.ok()) {
    counters_->jobs_failed_internal.Inc();
    fail(WireErrorCode::kInternal, WireStage::kCompile, partition.status().message());
    return;
  }

  // Each shard's circuit is cached independently under a shard-suffixed key,
  // so repeat sharded jobs (and jobs at the same shard count from other
  // connections) reuse every per-shard compilation.
  CompiledShardedModel sharded;
  sharded.model = model;
  sharded.backend = zo.backend;
  sharded.shards.resize(num_shards);
  const std::string key_base = ModelHashHex(job->request.model_text);
  const std::string backend_tag = job->request.backend == 1 ? ":ipa" : ":kzg";
  bool cache_hit = true;
  {
    obs::Span span("serve.compile");
    for (size_t i = 0; i < num_shards; ++i) {
      const std::string key = key_base + ":shard" + std::to_string(i) + "/" +
                              std::to_string(num_shards) + backend_tag;
      StatusOr<std::shared_ptr<const CompiledModel>> compiled = cache_.GetOrCompile(
          key, [&]() -> StatusOr<std::shared_ptr<const CompiledModel>> {
            cache_hit = false;
            return std::make_shared<const CompiledModel>(
                CompileModel(partition->shards[i].model, zo));
          });
      if (!compiled.ok()) {
        counters_->jobs_failed_internal.Inc();
        fail(WireErrorCode::kInternal, WireStage::kCompile,
             "shard " + std::to_string(i) + "/" + std::to_string(num_shards) + ": " +
                 compiled.status().message());
        return;
      }
      sharded.shards[i] = std::move(*compiled);
      Status live = job->cancel->Check("compile");
      if (!live.ok()) {
        fail_cancel(live, WireStage::kCompile);
        return;
      }
    }
  }
  sharded.partition = std::move(*partition);
  sharded.compile_seconds = SecondsBetween(compile_start, SteadyClock::now());
  counters_->stage_compile->Record(sharded.compile_seconds);

  job->stage.store(static_cast<uint8_t>(WireStage::kWitness), std::memory_order_relaxed);
  const auto witness_start = SteadyClock::now();
  Tensor<int64_t> input_q;
  {
    obs::Span span("serve.witness");
    if (!job->request.input.empty()) {
      if (static_cast<int64_t>(job->request.input.size()) != model.input_shape.NumElements()) {
        counters_->jobs_rejected_malformed.Inc();
        fail(WireErrorCode::kInputMismatch, WireStage::kWitness,
             "input has " + std::to_string(job->request.input.size()) +
                 " elements, model wants " + std::to_string(model.input_shape.NumElements()));
        return;
      }
      input_q = Tensor<int64_t>(model.input_shape, std::move(job->request.input));
    } else {
      input_q = QuantizeTensor(SyntheticInput(model, job->request.seed), model.quant);
    }
  }
  counters_->stage_witness->Record(SecondsBetween(witness_start, SteadyClock::now()));

  job->stage.store(static_cast<uint8_t>(WireStage::kProve), std::memory_order_relaxed);
  const auto prove_start = SteadyClock::now();
  Job* job_raw = job.get();  // the shared_ptr outlives CreateShardedProof
  StatusOr<ShardedProof> proof = [&] {
    obs::Span span("serve.prove");
    return CreateShardedProof(sharded, input_q, job->cancel.get(),
                              [job_raw](size_t done, size_t) {
                                job_raw->shards_done.store(static_cast<uint32_t>(done),
                                                           std::memory_order_relaxed);
                              });
  }();
  const double prove_seconds = SecondsBetween(prove_start, SteadyClock::now());
  counters_->stage_prove->Record(prove_seconds);
  // Shard-count-labelled prove series alongside the aggregate, so scaling is
  // visible per shard count (e.g. serve.stage_seconds.prove.shards4).
  obs::MetricsRegistry::Global()
      .histogram("serve.stage_seconds.prove.shards" + std::to_string(num_shards),
                 kStageSecondsBuckets)
      .Record(prove_seconds);
  if (!proof.ok()) {
    if (proof.status().code() == StatusCode::kCancelled ||
        proof.status().code() == StatusCode::kDeadlineExceeded) {
      fail_cancel(proof.status(), WireStage::kProve);
    } else {
      counters_->jobs_failed_internal.Inc();
      fail(WireErrorCode::kInternal, WireStage::kProve, proof.status().message());
    }
    return;
  }

  if (!options_.report_dir.empty()) {
    // Sharded jobs report the zkml.sharded_proof/v1 document instead of the
    // single-circuit run report. Report I/O must never fail a proved job.
    obs::Json doc = ShardedReportJson(sharded, *proof);
    const std::string path =
        options_.report_dir + "/job_" + std::to_string(job->id) + ".json";
    std::ofstream out(path);
    if (out) out << doc.DumpPretty() << "\n";
  }

  job->stage.store(static_cast<uint8_t>(WireStage::kRespond), std::memory_order_relaxed);
  const auto finished = SteadyClock::now();
  job->response.proof = EncodeShardedProof(*proof);
  job->response.instance = std::move(proof->instance);
  job->response.output = proof->output_q.ToVector();
  job->response.queue_micros = queue_micros;
  job->response.prove_micros = MicrosBetween(started, finished);
  job->response.cache_hit = cache_hit ? 1 : 0;
  job->response.shards = static_cast<uint32_t>(num_shards);
  job->ok = true;
  counters_->jobs_completed.Inc();
  counters_->job_seconds->Record(
      std::chrono::duration<double>(finished - job->enqueued).count());
}

void ZkmlServer::ExecuteBatchedJob(const std::shared_ptr<Job>& job, const Model& model,
                                   size_t batch, uint64_t queue_micros,
                                   SteadyClock::time_point started) {
  auto fail = [&](WireErrorCode code, WireStage stage, std::string message) {
    job->ok = false;
    job->error = {code, stage, std::move(message)};
  };
  auto fail_cancel = [&](const Status& s, WireStage stage) {
    if (s.code() == StatusCode::kCancelled) {
      counters_->jobs_cancelled.Inc();
      fail(WireErrorCode::kCancelled, stage,
           job->reaped.load(std::memory_order_relaxed) ? "reaped by watchdog: " + s.message()
                                                       : s.message());
    } else {
      counters_->jobs_deadline_exceeded.Inc();
      fail(WireErrorCode::kDeadlineExceeded, stage, s.message());
    }
  };

  job->stage.store(static_cast<uint8_t>(WireStage::kCompile), std::memory_order_relaxed);
  const auto compile_start = SteadyClock::now();
  // The batched circuit is a different circuit than the single-inference one
  // (replicated advice regions, N-segment statement), so it caches under a
  // batch-suffixed key next to the model's other compilations.
  const std::string key = ModelHashHex(job->request.model_text) + ":batch" +
                          std::to_string(batch) +
                          (job->request.backend == 1 ? ":ipa" : ":kzg");
  bool cache_hit = true;
  StatusOr<std::shared_ptr<const CompiledModel>> compiled = [&] {
    obs::Span span("serve.compile");
    return cache_.GetOrCompile(key, [&]() -> StatusOr<std::shared_ptr<const CompiledModel>> {
      cache_hit = false;
      ZkmlOptions zo;
      zo.backend = job->request.backend == 1 ? PcsKind::kIpa : PcsKind::kKzg;
      zo.optimizer.backend = zo.backend;
      zo.optimizer.min_columns = options_.optimizer_min_columns;
      zo.optimizer.max_columns = options_.optimizer_max_columns;
      zo.optimizer.max_k = options_.optimizer_max_k;
      StatusOr<CompiledBatchedModel> cb = CompileBatched(model, batch, zo);
      if (!cb.ok()) return cb.status();
      return std::make_shared<const CompiledModel>(std::move(cb->compiled));
    });
  }();
  counters_->stage_compile->Record(SecondsBetween(compile_start, SteadyClock::now()));
  if (!compiled.ok()) {
    counters_->jobs_failed_internal.Inc();
    fail(WireErrorCode::kInternal, WireStage::kCompile, compiled.status().message());
    return;
  }
  Status live = job->cancel->Check("compile");
  if (!live.ok()) {
    fail_cancel(live, WireStage::kCompile);
    return;
  }

  job->stage.store(static_cast<uint8_t>(WireStage::kWitness), std::memory_order_relaxed);
  const auto witness_start = SteadyClock::now();
  const Model& m = (*compiled)->model;
  const size_t per = static_cast<size_t>(m.input_shape.NumElements());
  std::vector<Tensor<int64_t>> inputs_q;
  inputs_q.reserve(batch);
  {
    obs::Span span("serve.witness");
    if (!job->request.input.empty()) {
      // Explicit input carries batch x per elements, inference-major.
      if (job->request.input.size() != batch * per) {
        counters_->jobs_rejected_malformed.Inc();
        fail(WireErrorCode::kInputMismatch, WireStage::kWitness,
             "batched input has " + std::to_string(job->request.input.size()) +
                 " elements, batch " + std::to_string(batch) + " of this model wants " +
                 std::to_string(batch * per) + " (" + std::to_string(per) +
                 " per inference)");
        return;
      }
      for (size_t i = 0; i < batch; ++i) {
        std::vector<int64_t> slice(job->request.input.begin() + static_cast<ptrdiff_t>(i * per),
                                   job->request.input.begin() +
                                       static_cast<ptrdiff_t>((i + 1) * per));
        inputs_q.emplace_back(m.input_shape, std::move(slice));
      }
    } else {
      // Synthetic inputs: one distinct draw per inference, seeded seed + i so
      // the batch is reproducible but not N copies of one tensor.
      for (size_t i = 0; i < batch; ++i) {
        inputs_q.push_back(QuantizeTensor(SyntheticInput(m, job->request.seed + i), m.quant));
      }
    }
  }
  counters_->stage_witness->Record(SecondsBetween(witness_start, SteadyClock::now()));

  job->stage.store(static_cast<uint8_t>(WireStage::kProve), std::memory_order_relaxed);
  const auto prove_start = SteadyClock::now();
  StatusOr<BatchedProof> proof = [&] {
    obs::Span span("serve.prove");
    return CreateBatchedProof(**compiled, inputs_q, job->cancel.get());
  }();
  const double prove_seconds = SecondsBetween(prove_start, SteadyClock::now());
  counters_->stage_prove->Record(prove_seconds);
  // Batch-size-labelled prove series so amortization is visible per N.
  obs::MetricsRegistry::Global()
      .histogram("serve.stage_seconds.prove.batch" + std::to_string(batch),
                 kStageSecondsBuckets)
      .Record(prove_seconds);
  if (!proof.ok()) {
    if (proof.status().code() == StatusCode::kCancelled ||
        proof.status().code() == StatusCode::kDeadlineExceeded) {
      fail_cancel(proof.status(), WireStage::kProve);
    } else {
      counters_->jobs_failed_internal.Inc();
      fail(WireErrorCode::kInternal, WireStage::kProve, proof.status().message());
    }
    return;
  }

  if (!options_.report_dir.empty()) {
    // Batched jobs report the zkml.batched_proof/v1 document. Report I/O must
    // never fail a proved job.
    obs::Json doc = BatchedReportJson(**compiled, *proof);
    const std::string path =
        options_.report_dir + "/job_" + std::to_string(job->id) + ".json";
    std::ofstream out(path);
    if (out) out << doc.DumpPretty() << "\n";
  }

  job->stage.store(static_cast<uint8_t>(WireStage::kRespond), std::memory_order_relaxed);
  const auto finished = SteadyClock::now();
  job->response.proof = EncodeBatchedProof(*proof);
  job->response.instance = std::move(proof->instance);
  job->response.output.clear();
  for (const Tensor<int64_t>& out_q : proof->outputs_q) {
    const std::vector<int64_t> v = out_q.ToVector();
    job->response.output.insert(job->response.output.end(), v.begin(), v.end());
  }
  job->response.queue_micros = queue_micros;
  job->response.prove_micros = MicrosBetween(started, finished);
  job->response.cache_hit = cache_hit ? 1 : 0;
  job->response.shards = 1;
  job->response.batch = static_cast<uint32_t>(batch);
  job->ok = true;
  counters_->jobs_completed.Inc();
  counters_->job_seconds->Record(
      std::chrono::duration<double>(finished - job->enqueued).count());
}

void ZkmlServer::ExecuteCoalescedJobs(const std::vector<std::shared_ptr<Job>>& group) {
  const auto started = SteadyClock::now();
  const size_t batch = group.size();
  const std::shared_ptr<Job>& lead = group.front();
  auto fail_all = [&](WireErrorCode code, WireStage stage, const std::string& message) {
    for (const auto& job : group) {
      job->ok = false;
      job->error = {code, stage, message};
    }
  };
  auto set_stage = [&](WireStage stage) {
    for (const auto& job : group) {
      job->stage.store(static_cast<uint8_t>(stage), std::memory_order_relaxed);
    }
  };
  auto log_jobs = [&](const std::vector<std::shared_ptr<Job>>& jobs) {
    if (event_log_ == nullptr) return;
    for (const auto& job : jobs) {
      obs::Json fields = obs::Json::Object();
      fields.Set("job_id", job->id);
      fields.Set("request_id", job->request_id);
      fields.Set("coalesced", static_cast<uint64_t>(batch));
      fields.Set("elapsed_s", SecondsBetween(job->enqueued, SteadyClock::now()));
      if (job->ok) {
        LogEvent("job_completed", std::move(fields));
      } else {
        fields.Set("error", WireErrorCodeName(job->error.code));
        fields.Set("stage", WireStageName(job->error.stage));
        LogEvent("job_failed", std::move(fields));
      }
    }
  };
  auto log_outcome = [&] { log_jobs(group); };

  for (const auto& job : group) {
    counters_->stage_admission->Record(SecondsBetween(job->enqueued, started));
  }

  set_stage(WireStage::kModelParse);
  StatusOr<Model> model = DeserializeModel(lead->request.model_text);
  if (!model.ok()) {
    counters_->jobs_rejected_malformed.Inc(batch);
    fail_all(WireErrorCode::kMalformedModel, WireStage::kModelParse, model.status().message());
    log_outcome();
    return;
  }
  const size_t per = static_cast<size_t>(model->input_shape.NumElements());
  // A member whose explicit input is malformed is failed alone; the rest of
  // the group still proves (the batched circuit is compiled for the survivor
  // count, so nothing is wasted on the reject).
  std::vector<std::shared_ptr<Job>> good;
  good.reserve(batch);
  for (const auto& job : group) {
    if (!job->request.input.empty() && job->request.input.size() != per) {
      counters_->jobs_rejected_malformed.Inc();
      job->ok = false;
      job->error = {WireErrorCode::kInputMismatch, WireStage::kWitness,
                    "input has " + std::to_string(job->request.input.size()) +
                        " elements, model wants " + std::to_string(per)};
    } else {
      good.push_back(job);
    }
  }
  if (good.size() < batch) {
    // Group shrank: log the rejects here, then reprove what survives (a
    // singleton falls back to the ordinary pipeline, which does its own
    // logging; smaller groups recurse — terminating because every reject is
    // final).
    std::vector<std::shared_ptr<Job>> rejected;
    for (const auto& job : group) {
      if (std::find(good.begin(), good.end(), job) == good.end()) rejected.push_back(job);
    }
    log_jobs(rejected);
    if (good.size() == 1) {
      ExecuteJob(good.front());
    } else if (good.size() > 1) {
      ExecuteCoalescedJobs(good);
    }
    return;
  }

  set_stage(WireStage::kCompile);
  const auto compile_start = SteadyClock::now();
  const std::string key = ModelHashHex(lead->request.model_text) + ":batch" +
                          std::to_string(batch) +
                          (lead->request.backend == 1 ? ":ipa" : ":kzg");
  bool cache_hit = true;
  StatusOr<std::shared_ptr<const CompiledModel>> compiled = [&] {
    obs::Span span("serve.compile");
    return cache_.GetOrCompile(key, [&]() -> StatusOr<std::shared_ptr<const CompiledModel>> {
      cache_hit = false;
      ZkmlOptions zo;
      zo.backend = lead->request.backend == 1 ? PcsKind::kIpa : PcsKind::kKzg;
      zo.optimizer.backend = zo.backend;
      zo.optimizer.min_columns = options_.optimizer_min_columns;
      zo.optimizer.max_columns = options_.optimizer_max_columns;
      zo.optimizer.max_k = options_.optimizer_max_k;
      StatusOr<CompiledBatchedModel> cb = CompileBatched(*model, batch, zo);
      if (!cb.ok()) return cb.status();
      return std::make_shared<const CompiledModel>(std::move(cb->compiled));
    });
  }();
  counters_->stage_compile->Record(SecondsBetween(compile_start, SteadyClock::now()));
  if (!compiled.ok()) {
    counters_->jobs_failed_internal.Inc(batch);
    fail_all(WireErrorCode::kInternal, WireStage::kCompile, compiled.status().message());
    log_outcome();
    return;
  }

  set_stage(WireStage::kWitness);
  const Model& m = (*compiled)->model;
  std::vector<Tensor<int64_t>> inputs_q;
  inputs_q.reserve(batch);
  for (const auto& job : group) {
    if (!job->request.input.empty()) {
      inputs_q.emplace_back(m.input_shape, job->request.input);
    } else {
      inputs_q.push_back(QuantizeTensor(SyntheticInput(m, job->request.seed), m.quant));
    }
  }

  // The lead job's token drives cancellation: it holds the oldest budget in
  // the group, so a deadline that fires first fires there.
  set_stage(WireStage::kProve);
  const auto prove_start = SteadyClock::now();
  StatusOr<BatchedProof> proof = [&] {
    obs::Span span("serve.prove");
    return CreateBatchedProof(**compiled, inputs_q, lead->cancel.get());
  }();
  const double prove_seconds = SecondsBetween(prove_start, SteadyClock::now());
  counters_->stage_prove->Record(prove_seconds);
  obs::MetricsRegistry::Global()
      .histogram("serve.stage_seconds.prove.batch" + std::to_string(batch),
                 kStageSecondsBuckets)
      .Record(prove_seconds);
  if (!proof.ok()) {
    if (proof.status().code() == StatusCode::kCancelled) {
      counters_->jobs_cancelled.Inc(batch);
      fail_all(WireErrorCode::kCancelled, WireStage::kProve,
               lead->reaped.load(std::memory_order_relaxed)
                   ? "reaped by watchdog: " + proof.status().message()
                   : proof.status().message());
    } else if (proof.status().code() == StatusCode::kDeadlineExceeded) {
      counters_->jobs_deadline_exceeded.Inc(batch);
      fail_all(WireErrorCode::kDeadlineExceeded, WireStage::kProve, proof.status().message());
    } else {
      counters_->jobs_failed_internal.Inc(batch);
      fail_all(WireErrorCode::kInternal, WireStage::kProve, proof.status().message());
    }
    log_outcome();
    return;
  }

  if (!options_.report_dir.empty()) {
    obs::Json doc = BatchedReportJson(**compiled, *proof);
    doc.Set("coalesced", static_cast<uint64_t>(batch));
    const std::string path =
        options_.report_dir + "/job_" + std::to_string(lead->id) + ".json";
    std::ofstream out(path);
    if (out) out << doc.DumpPretty() << "\n";
  }

  // Every member gets the shared artifact and the full concatenated
  // statement (both are needed to verify), plus its own inference's output.
  set_stage(WireStage::kRespond);
  const auto finished = SteadyClock::now();
  const std::vector<uint8_t> artifact = EncodeBatchedProof(*proof);
  for (size_t i = 0; i < group.size(); ++i) {
    const std::shared_ptr<Job>& job = group[i];
    job->response.proof = artifact;
    job->response.instance = proof->instance;
    job->response.output = proof->outputs_q[i].ToVector();
    job->response.queue_micros = MicrosBetween(job->enqueued, started);
    job->response.prove_micros = MicrosBetween(started, finished);
    job->response.cache_hit = cache_hit ? 1 : 0;
    job->response.shards = 1;
    job->response.batch = static_cast<uint32_t>(batch);
    job->ok = true;
    counters_->job_seconds->Record(
        std::chrono::duration<double>(finished - job->enqueued).count());
  }
  counters_->jobs_completed.Inc(batch);
  log_outcome();
}

void ZkmlServer::WriteJobReport(const Job& job, const CompiledModel& compiled,
                                const ZkmlProof& proof) {
  obs::RunReport report = BuildRunReport(compiled, proof, 0.0, compiled.model.name);
  const std::string path = options_.report_dir + "/job_" + std::to_string(job.id) + ".json";
  // Report I/O must never fail a job that proved successfully.
  const Status ignored = report.WriteFile(path);
  (void)ignored;
}

void ZkmlServer::WatchdogLoop() {
  const auto period = std::chrono::milliseconds(std::max(1, options_.watchdog_period_ms));
  const auto grace = std::chrono::milliseconds(options_.wedge_grace_ms);
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(period);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      const auto now = SteadyClock::now();
      for (auto& job : running_) {
        // Past-deadline jobs stop on their own at the next prover checkpoint;
        // the watchdog only steps in when one overstays the grace window
        // (wedged between checkpoints, or the deadline machinery failed).
        if (!job->reaped.load(std::memory_order_relaxed) && now >= job->deadline_tp + grace) {
          job->reaped.store(true, std::memory_order_relaxed);
          job->cancel->Cancel();
          counters_->watchdog_reaped.Inc();
        }
      }
    }
    PublishMetrics();
    SampleRates();
  }
}

}  // namespace serve
}  // namespace zkml
