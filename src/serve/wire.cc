#include "src/serve/wire.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "src/plonk/proof_io.h"

namespace zkml {
namespace serve {
namespace {

// Little-endian scalar append/read, sharing proof_io.h's bounds discipline.
template <typename T>
void AppendLe(std::vector<uint8_t>* out, T v) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out->push_back(static_cast<uint8_t>(static_cast<uint64_t>(v) >> (8 * i)));
  }
}

template <typename T>
Status ReadLe(const std::vector<uint8_t>& in, size_t* offset, T* v, const char* what) {
  if (*offset > in.size() || in.size() - *offset < sizeof(T)) {
    return MalformedProofError(std::string("truncated reading ") + what + " at byte offset " +
                               std::to_string(*offset));
  }
  uint64_t acc = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    acc |= static_cast<uint64_t>((in)[*offset + i]) << (8 * i);
  }
  *offset += sizeof(T);
  *v = static_cast<T>(acc);
  return Status::Ok();
}

Status ReadBytes(const std::vector<uint8_t>& in, size_t* offset, size_t len, const char* what,
                 std::vector<uint8_t>* out) {
  if (*offset > in.size() || in.size() - *offset < len) {
    return MalformedProofError(std::string("truncated reading ") + what + " (need " +
                               std::to_string(len) + " bytes at offset " +
                               std::to_string(*offset) + ", have " +
                               std::to_string(in.size() - *offset) + ")");
  }
  out->assign(in.begin() + static_cast<long>(*offset),
              in.begin() + static_cast<long>(*offset + len));
  *offset += len;
  return Status::Ok();
}

}  // namespace

const char* WireStageName(WireStage stage) {
  switch (stage) {
    case WireStage::kFrameHeader:
      return "frame-header";
    case WireStage::kFramePayload:
      return "frame-payload";
    case WireStage::kModelParse:
      return "model-parse";
    case WireStage::kAdmission:
      return "admission";
    case WireStage::kCompile:
      return "compile";
    case WireStage::kWitness:
      return "witness";
    case WireStage::kProve:
      return "prove";
    case WireStage::kRespond:
      return "respond";
  }
  return "unknown";
}

const char* WireErrorCodeName(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kBadMagic:
      return "BAD_MAGIC";
    case WireErrorCode::kBadVersion:
      return "BAD_VERSION";
    case WireErrorCode::kBadFrameType:
      return "BAD_FRAME_TYPE";
    case WireErrorCode::kFrameTooLarge:
      return "FRAME_TOO_LARGE";
    case WireErrorCode::kBadCrc:
      return "BAD_CRC";
    case WireErrorCode::kBadReserved:
      return "BAD_RESERVED";
    case WireErrorCode::kMalformedRequest:
      return "MALFORMED_REQUEST";
    case WireErrorCode::kMalformedModel:
      return "MALFORMED_MODEL";
    case WireErrorCode::kInputMismatch:
      return "INPUT_MISMATCH";
    case WireErrorCode::kOverloaded:
      return "OVERLOADED";
    case WireErrorCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case WireErrorCode::kCancelled:
      return "CANCELLED";
    case WireErrorCode::kShuttingDown:
      return "SHUTTING_DOWN";
    case WireErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string WireError::ToString() const {
  return std::string(WireErrorCodeName(code)) + " at stage " + WireStageName(stage) +
         (message.empty() ? "" : ": " + message);
}

uint32_t Crc32(const uint8_t* data, size_t len) {
  // Table-driven reflected CRC-32 (polynomial 0xEDB88320), built on first use.
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int b = 0; b < 8; ++b) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void EncodeFrame(std::vector<uint8_t>* out, FrameType type, uint64_t request_id,
                 const std::vector<uint8_t>& payload, uint8_t version) {
  out->reserve(out->size() + kFrameHeaderSize + payload.size());
  out->insert(out->end(), kWireMagic, kWireMagic + 4);
  out->push_back(version);
  out->push_back(static_cast<uint8_t>(type));
  AppendLe<uint16_t>(out, 0);  // reserved
  AppendLe<uint64_t>(out, request_id);
  AppendLe<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  AppendLe<uint32_t>(out, Crc32(payload.data(), payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

StatusOr<FrameHeader> DecodeFrameHeader(const uint8_t* buf, uint32_t max_frame_bytes,
                                        WireErrorCode* wire_code) {
  *wire_code = WireErrorCode::kInternal;
  if (std::memcmp(buf, kWireMagic, 4) != 0) {
    *wire_code = WireErrorCode::kBadMagic;
    return MalformedProofError("bad frame magic (expected \"ZKSV\")");
  }
  if (buf[4] < kMinWireVersion || buf[4] > kWireVersion) {
    *wire_code = WireErrorCode::kBadVersion;
    return MalformedProofError("unsupported wire version " + std::to_string(buf[4]) +
                               " (this server speaks versions " +
                               std::to_string(kMinWireVersion) + ".." +
                               std::to_string(kWireVersion) + ")");
  }
  const uint8_t type = buf[5];
  if (type != static_cast<uint8_t>(FrameType::kProveRequest) &&
      type != static_cast<uint8_t>(FrameType::kProveResponse) &&
      type != static_cast<uint8_t>(FrameType::kError) &&
      type != static_cast<uint8_t>(FrameType::kPing) &&
      type != static_cast<uint8_t>(FrameType::kPong)) {
    *wire_code = WireErrorCode::kBadFrameType;
    return MalformedProofError("unknown frame type " + std::to_string(type));
  }
  const uint16_t reserved = static_cast<uint16_t>(buf[6]) | static_cast<uint16_t>(buf[7]) << 8;
  if (reserved != 0) {
    *wire_code = WireErrorCode::kBadReserved;
    return MalformedProofError("reserved header bits set (" + std::to_string(reserved) + ")");
  }
  FrameHeader header;
  header.version = buf[4];
  header.type = static_cast<FrameType>(type);
  for (int i = 0; i < 8; ++i) {
    header.request_id |= static_cast<uint64_t>(buf[8 + i]) << (8 * i);
  }
  for (int i = 0; i < 4; ++i) {
    header.payload_len |= static_cast<uint32_t>(buf[16 + i]) << (8 * i);
    header.payload_crc |= static_cast<uint32_t>(buf[20 + i]) << (8 * i);
  }
  if (header.payload_len > max_frame_bytes) {
    *wire_code = WireErrorCode::kFrameTooLarge;
    return MalformedProofError("declared payload length " + std::to_string(header.payload_len) +
                               " exceeds the " + std::to_string(max_frame_bytes) +
                               "-byte frame cap");
  }
  return header;
}

Status CheckPayloadCrc(const FrameHeader& header, const std::vector<uint8_t>& payload) {
  const uint32_t actual = Crc32(payload.data(), payload.size());
  if (actual != header.payload_crc) {
    return MalformedProofError("payload CRC mismatch (header says " +
                               std::to_string(header.payload_crc) + ", payload hashes to " +
                               std::to_string(actual) + ")");
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeProveRequest(const ProveRequest& req, uint8_t version) {
  std::vector<uint8_t> out;
  out.push_back(req.backend);
  AppendLe<uint32_t>(&out, req.deadline_ms);
  AppendLe<uint64_t>(&out, req.seed);
  AppendLe<uint32_t>(&out, static_cast<uint32_t>(req.input.size()));
  for (int64_t v : req.input) {
    AppendLe<uint64_t>(&out, static_cast<uint64_t>(v));
  }
  AppendLe<uint32_t>(&out, static_cast<uint32_t>(req.model_text.size()));
  out.insert(out.end(), req.model_text.begin(), req.model_text.end());
  if (version >= 2) {
    AppendLe<uint32_t>(&out, req.shards);
  }
  if (version >= 3) {
    AppendLe<uint32_t>(&out, req.batch);
  }
  return out;
}

StatusOr<ProveRequest> DecodeProveRequest(const std::vector<uint8_t>& payload, uint8_t version) {
  ProveRequest req;
  size_t off = 0;
  ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &req.backend, "backend"));
  if (req.backend > 1) {
    return MalformedProofError("unknown backend " + std::to_string(req.backend) +
                               " (0 = kzg, 1 = ipa)");
  }
  ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &req.deadline_ms, "deadline_ms"));
  ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &req.seed, "seed"));
  uint32_t n_input = 0;
  ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &n_input, "input count"));
  if (static_cast<size_t>(n_input) > (payload.size() - off) / 8) {
    return MalformedProofError("declared input count " + std::to_string(n_input) +
                               " exceeds remaining payload");
  }
  req.input.resize(n_input);
  for (uint32_t i = 0; i < n_input; ++i) {
    uint64_t raw = 0;
    ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &raw, "input value"));
    req.input[i] = static_cast<int64_t>(raw);
  }
  uint32_t model_len = 0;
  ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &model_len, "model length"));
  std::vector<uint8_t> model_bytes;
  ZKML_RETURN_IF_ERROR(ReadBytes(payload, &off, model_len, "model text", &model_bytes));
  req.model_text.assign(model_bytes.begin(), model_bytes.end());
  if (version >= 2) {
    ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &req.shards, "shard count"));
  } else if (payload.size() - off == 4) {
    // A version-1 frame must not carry the v2 shards field. Tolerating these
    // four bytes would let a client request sharded proving while advertising
    // a version that predates it — hard-reject with the specific diagnosis
    // rather than the generic trailing-bytes message.
    uint32_t smuggled = 0;
    size_t peek = off;
    ZKML_RETURN_IF_ERROR(ReadLe(payload, &peek, &smuggled, "trailing field"));
    if (smuggled != 0) {
      return MalformedProofError("version-1 prove request carries a nonzero trailing shards "
                                 "field (" + std::to_string(smuggled) +
                                 "); sharded proving requires wire version >= 2");
    }
  }
  if (version >= 3) {
    ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &req.batch, "batch size"));
  }
  if (off != payload.size()) {
    return MalformedProofError(std::to_string(payload.size() - off) +
                               " trailing byte(s) in version-" + std::to_string(version) +
                               " prove request");
  }
  return req;
}

std::vector<uint8_t> EncodeProveResponse(const ProveResponse& resp, uint8_t version) {
  std::vector<uint8_t> out;
  AppendLe<uint64_t>(&out, resp.queue_micros);
  AppendLe<uint64_t>(&out, resp.prove_micros);
  out.push_back(resp.cache_hit);
  AppendLe<uint32_t>(&out, static_cast<uint32_t>(resp.proof.size()));
  out.insert(out.end(), resp.proof.begin(), resp.proof.end());
  AppendLe<uint32_t>(&out, static_cast<uint32_t>(resp.instance.size()));
  for (const Fr& v : resp.instance) {
    ProofAppendFr(&out, v);
  }
  AppendLe<uint32_t>(&out, static_cast<uint32_t>(resp.output.size()));
  for (int64_t v : resp.output) {
    AppendLe<uint64_t>(&out, static_cast<uint64_t>(v));
  }
  if (version >= 2) {
    AppendLe<uint32_t>(&out, resp.shards);
  }
  if (version >= 3) {
    AppendLe<uint32_t>(&out, resp.batch);
  }
  return out;
}

StatusOr<ProveResponse> DecodeProveResponse(const std::vector<uint8_t>& payload,
                                            uint8_t version) {
  ProveResponse resp;
  size_t off = 0;
  ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &resp.queue_micros, "queue micros"));
  ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &resp.prove_micros, "prove micros"));
  ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &resp.cache_hit, "cache-hit flag"));
  uint32_t proof_len = 0;
  ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &proof_len, "proof length"));
  ZKML_RETURN_IF_ERROR(ReadBytes(payload, &off, proof_len, "proof bytes", &resp.proof));
  uint32_t n_inst = 0;
  ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &n_inst, "instance count"));
  if (static_cast<size_t>(n_inst) > (payload.size() - off) / kProofFrSize) {
    return MalformedProofError("declared instance count " + std::to_string(n_inst) +
                               " exceeds remaining payload");
  }
  resp.instance.resize(n_inst);
  for (uint32_t i = 0; i < n_inst; ++i) {
    ZKML_RETURN_IF_ERROR(ProofReadFr(payload, &off, &resp.instance[i], "instance value"));
  }
  uint32_t n_out = 0;
  ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &n_out, "output count"));
  if (static_cast<size_t>(n_out) > (payload.size() - off) / 8) {
    return MalformedProofError("declared output count " + std::to_string(n_out) +
                               " exceeds remaining payload");
  }
  resp.output.resize(n_out);
  for (uint32_t i = 0; i < n_out; ++i) {
    uint64_t raw = 0;
    ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &raw, "output value"));
    resp.output[i] = static_cast<int64_t>(raw);
  }
  if (version >= 2) {
    ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &resp.shards, "response shard count"));
  }
  if (version >= 3) {
    ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &resp.batch, "response batch size"));
  }
  if (off != payload.size()) {
    return MalformedProofError(std::to_string(payload.size() - off) +
                               " trailing byte(s) in version-" + std::to_string(version) +
                               " prove response");
  }
  return resp;
}

std::vector<uint8_t> EncodeWireError(const WireError& err) {
  const size_t msg_len = std::min<size_t>(err.message.size(), 65535);
  std::vector<uint8_t> out;
  AppendLe<uint16_t>(&out, static_cast<uint16_t>(err.code));
  out.push_back(static_cast<uint8_t>(err.stage));
  AppendLe<uint16_t>(&out, static_cast<uint16_t>(msg_len));
  out.insert(out.end(), err.message.begin(), err.message.begin() + static_cast<long>(msg_len));
  return out;
}

StatusOr<WireError> DecodeWireError(const std::vector<uint8_t>& payload) {
  WireError err;
  size_t off = 0;
  uint16_t code = 0;
  uint8_t stage = 0;
  uint16_t msg_len = 0;
  ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &code, "error code"));
  ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &stage, "error stage"));
  ZKML_RETURN_IF_ERROR(ReadLe(payload, &off, &msg_len, "message length"));
  std::vector<uint8_t> msg;
  ZKML_RETURN_IF_ERROR(ReadBytes(payload, &off, msg_len, "error message", &msg));
  if (off != payload.size()) {
    return MalformedProofError(std::to_string(payload.size() - off) +
                               " trailing byte(s) in error frame");
  }
  err.code = static_cast<WireErrorCode>(code);
  err.stage = static_cast<WireStage>(stage);
  err.message.assign(msg.begin(), msg.end());
  return err;
}

}  // namespace serve
}  // namespace zkml
