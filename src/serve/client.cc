#include "src/serve/client.h"

namespace zkml {
namespace serve {

StatusOr<ZkmlClient> ZkmlClient::Connect(const std::string& host, uint16_t port,
                                         int timeout_ms) {
  ZKML_ASSIGN_OR_RETURN(Socket sock, Socket::ConnectTcp(host, port, timeout_ms));
  return ZkmlClient(std::move(sock));
}

Status ZkmlClient::SendFrame(FrameType type, uint64_t request_id,
                             const std::vector<uint8_t>& payload, int timeout_ms) {
  std::vector<uint8_t> out;
  EncodeFrame(&out, type, request_id, payload);
  return sock_.WriteFull(out.data(), out.size(), timeout_ms);
}

StatusOr<std::pair<FrameHeader, std::vector<uint8_t>>> ZkmlClient::ReadFrame(int timeout_ms) {
  uint8_t header[kFrameHeaderSize];
  ZKML_RETURN_IF_ERROR(sock_.ReadFull(header, kFrameHeaderSize, timeout_ms));
  WireErrorCode ignored;
  ZKML_ASSIGN_OR_RETURN(FrameHeader hdr,
                        DecodeFrameHeader(header, kDefaultMaxFrameBytes, &ignored));
  std::vector<uint8_t> payload(hdr.payload_len);
  if (hdr.payload_len > 0) {
    ZKML_RETURN_IF_ERROR(sock_.ReadFull(payload.data(), payload.size(), timeout_ms));
  }
  ZKML_RETURN_IF_ERROR(CheckPayloadCrc(hdr, payload));
  return std::make_pair(hdr, std::move(payload));
}

StatusOr<ZkmlClient::ProveOutcome> ZkmlClient::Prove(const ProveRequest& request,
                                                     uint64_t request_id, int timeout_ms) {
  ZKML_RETURN_IF_ERROR(
      SendFrame(FrameType::kProveRequest, request_id, EncodeProveRequest(request), timeout_ms));
  ZKML_ASSIGN_OR_RETURN(auto frame, ReadFrame(timeout_ms));
  const FrameHeader& hdr = frame.first;
  if (hdr.request_id != request_id) {
    return MalformedProofError("response echoes request id " + std::to_string(hdr.request_id) +
                               ", expected " + std::to_string(request_id));
  }
  ProveOutcome out;
  if (hdr.type == FrameType::kProveResponse) {
    // Decode at the version the reply frame declares: the server answers at
    // the version the request spoke, so this is a no-op for this client, but
    // it keeps the decode honest if that ever changes.
    ZKML_ASSIGN_OR_RETURN(out.response, DecodeProveResponse(frame.second, hdr.version));
    out.ok = true;
    return out;
  }
  if (hdr.type == FrameType::kError) {
    ZKML_ASSIGN_OR_RETURN(out.error, DecodeWireError(frame.second));
    out.ok = false;
    return out;
  }
  return MalformedProofError("unexpected frame type in prove reply");
}

Status ZkmlClient::Ping(uint64_t request_id, int timeout_ms) {
  ZKML_RETURN_IF_ERROR(SendFrame(FrameType::kPing, request_id, {}, timeout_ms));
  ZKML_ASSIGN_OR_RETURN(auto frame, ReadFrame(timeout_ms));
  if (frame.first.type != FrameType::kPong || frame.first.request_id != request_id) {
    return MalformedProofError("ping reply is not the matching pong");
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace zkml
