// Tensor shapes and index arithmetic.
#ifndef SRC_TENSOR_SHAPE_H_
#define SRC_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace zkml {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const { return dims_[static_cast<size_t>(i)]; }
  const std::vector<int64_t>& dims() const { return dims_; }

  int64_t NumElements() const {
    int64_t n = 1;
    for (int64_t d : dims_) {
      n *= d;
    }
    return n;
  }

  // Row-major strides.
  std::vector<int64_t> Strides() const {
    std::vector<int64_t> s(dims_.size(), 1);
    for (size_t i = dims_.size(); i-- > 1;) {
      s[i - 1] = s[i] * dims_[i];
    }
    return s;
  }

  bool operator==(const Shape& o) const { return dims_ == o.dims_; }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  std::string ToString() const {
    std::string s = "[";
    for (size_t i = 0; i < dims_.size(); ++i) {
      if (i > 0) {
        s += ",";
      }
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  std::vector<int64_t> dims_;
};

}  // namespace zkml

#endif  // SRC_TENSOR_SHAPE_H_
