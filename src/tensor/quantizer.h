// Fixed-point quantization (paper §4.1): all circuit values are integers at a
// global power-of-two scale factor chosen per model; negative values are
// embedded as p - |x| in the field.
#ifndef SRC_TENSOR_QUANTIZER_H_
#define SRC_TENSOR_QUANTIZER_H_

#include <cmath>
#include <cstdint>

#include "src/tensor/tensor.h"

namespace zkml {

struct QuantParams {
  // Scale factor SF = 2^sf_bits: real value x is represented as round(x*SF).
  int sf_bits = 6;
  // Non-linearity / range lookup tables span [-2^(table_bits-1), 2^(table_bits-1));
  // this bounds both value range and the grid size (tables live in the rows).
  int table_bits = 12;

  int64_t SF() const { return int64_t{1} << sf_bits; }
  int64_t TableMin() const { return -(int64_t{1} << (table_bits - 1)); }
  int64_t TableMax() const { return int64_t{1} << (table_bits - 1); }  // exclusive
  bool InTableRange(int64_t q) const { return q >= TableMin() && q < TableMax(); }
};

inline int64_t QuantizeValue(double x, const QuantParams& qp) {
  return llround(x * static_cast<double>(qp.SF()));
}

inline double DequantizeValue(int64_t q, const QuantParams& qp) {
  return static_cast<double>(q) / static_cast<double>(qp.SF());
}

inline Tensor<int64_t> QuantizeTensor(const Tensor<float>& t, const QuantParams& qp) {
  Tensor<int64_t> out(t.shape());
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    out.flat(i) = QuantizeValue(t.flat(i), qp);
  }
  return out;
}

inline Tensor<float> DequantizeTensor(const Tensor<int64_t>& t, const QuantParams& qp) {
  Tensor<float> out(t.shape());
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    out.flat(i) = static_cast<float>(DequantizeValue(t.flat(i), qp));
  }
  return out;
}

}  // namespace zkml

#endif  // SRC_TENSOR_QUANTIZER_H_
