// N-dimensional tensors with shared storage and stride-based views. Shape
// operations (reshape, transpose, slice) return views over the same storage
// — the paper's observation that shape ops are "free" inside circuits because
// tensors hold references to previously assigned cells.
#ifndef SRC_TENSOR_TENSOR_H_
#define SRC_TENSOR_TENSOR_H_

#include <memory>
#include <vector>

#include "src/base/check.h"
#include "src/tensor/shape.h"

namespace zkml {

template <typename T>
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(const Shape& shape)
      : storage_(std::make_shared<std::vector<T>>(shape.NumElements())),
        shape_(shape),
        strides_(shape.Strides()),
        offset_(0) {}

  Tensor(const Shape& shape, std::vector<T> values)
      : storage_(std::make_shared<std::vector<T>>(std::move(values))),
        shape_(shape),
        strides_(shape.Strides()),
        offset_(0) {
    ZKML_CHECK(static_cast<int64_t>(storage_->size()) == shape.NumElements());
  }

  const Shape& shape() const { return shape_; }
  int64_t NumElements() const { return shape_.NumElements(); }

  T& at(const std::vector<int64_t>& idx) { return (*storage_)[FlatOffset(idx)]; }
  const T& at(const std::vector<int64_t>& idx) const { return (*storage_)[FlatOffset(idx)]; }

  // Linear access in logical (row-major) order; works on views.
  T& flat(int64_t i) { return (*storage_)[LogicalToStorage(i)]; }
  const T& flat(int64_t i) const { return (*storage_)[LogicalToStorage(i)]; }

  // Copies the logical contents into a fresh contiguous tensor.
  Tensor<T> Materialize() const {
    Tensor<T> out(shape_);
    const int64_t n = NumElements();
    for (int64_t i = 0; i < n; ++i) {
      out.flat(i) = flat(i);
    }
    return out;
  }

  bool IsContiguous() const { return offset_ == 0 && strides_ == shape_.Strides(); }

  // View: same data, new shape. Requires contiguous layout.
  Tensor<T> Reshape(const Shape& new_shape) const {
    ZKML_CHECK(new_shape.NumElements() == NumElements());
    if (!IsContiguous()) {
      return Materialize().Reshape(new_shape);
    }
    Tensor<T> out = *this;
    out.shape_ = new_shape;
    out.strides_ = new_shape.Strides();
    return out;
  }

  // View: permuted dimensions.
  Tensor<T> Transpose(const std::vector<int>& perm) const {
    ZKML_CHECK(static_cast<int>(perm.size()) == shape_.rank());
    std::vector<int64_t> new_dims(perm.size());
    std::vector<int64_t> new_strides(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      new_dims[i] = shape_.dim(perm[i]);
      new_strides[i] = strides_[static_cast<size_t>(perm[i])];
    }
    Tensor<T> out = *this;
    out.shape_ = Shape(new_dims);
    out.strides_ = new_strides;
    return out;
  }

  // View: sub-box starting at `starts` with extents `sizes`.
  Tensor<T> Slice(const std::vector<int64_t>& starts, const std::vector<int64_t>& sizes) const {
    ZKML_CHECK(static_cast<int>(starts.size()) == shape_.rank());
    ZKML_CHECK(static_cast<int>(sizes.size()) == shape_.rank());
    Tensor<T> out = *this;
    for (int i = 0; i < shape_.rank(); ++i) {
      ZKML_CHECK(starts[i] >= 0 && starts[i] + sizes[i] <= shape_.dim(i));
      out.offset_ += starts[static_cast<size_t>(i)] * strides_[static_cast<size_t>(i)];
    }
    out.shape_ = Shape(sizes);
    return out;
  }

  // Concatenation along `axis`: copies element references into fresh storage
  // ("free" in-circuit because the elements are cell references).
  static Tensor<T> Concat(const std::vector<Tensor<T>>& parts, int axis) {
    ZKML_CHECK(!parts.empty());
    std::vector<int64_t> dims = parts[0].shape().dims();
    int64_t total = 0;
    for (const Tensor<T>& p : parts) {
      total += p.shape().dim(axis);
    }
    dims[static_cast<size_t>(axis)] = total;
    Tensor<T> out((Shape(dims)));
    std::vector<int64_t> idx(dims.size(), 0);
    int64_t base = 0;
    for (const Tensor<T>& p : parts) {
      const int64_t n = p.NumElements();
      for (int64_t i = 0; i < n; ++i) {
        // Decode i into p's indices, shift along axis, write into out.
        int64_t rem = i;
        for (int d = p.shape().rank() - 1; d >= 0; --d) {
          idx[static_cast<size_t>(d)] = rem % p.shape().dim(d);
          rem /= p.shape().dim(d);
        }
        idx[static_cast<size_t>(axis)] += base;
        out.at(idx) = p.flat(i);
        idx[static_cast<size_t>(axis)] -= base;
      }
      base += p.shape().dim(axis);
    }
    return out;
  }

  // All logical elements as a flat vector (copy).
  std::vector<T> ToVector() const {
    std::vector<T> out(static_cast<size_t>(NumElements()));
    for (int64_t i = 0; i < NumElements(); ++i) {
      out[static_cast<size_t>(i)] = flat(i);
    }
    return out;
  }

 private:
  int64_t FlatOffset(const std::vector<int64_t>& idx) const {
    ZKML_DCHECK(static_cast<int>(idx.size()) == shape_.rank());
    int64_t off = offset_;
    for (size_t i = 0; i < idx.size(); ++i) {
      ZKML_DCHECK(idx[i] >= 0 && idx[i] < shape_.dim(static_cast<int>(i)));
      off += idx[i] * strides_[i];
    }
    return off;
  }

  int64_t LogicalToStorage(int64_t i) const {
    int64_t off = offset_;
    for (int d = shape_.rank() - 1; d >= 0; --d) {
      off += (i % shape_.dim(d)) * strides_[static_cast<size_t>(d)];
      i /= shape_.dim(d);
    }
    return off;
  }

  std::shared_ptr<std::vector<T>> storage_;
  Shape shape_;
  std::vector<int64_t> strides_;
  int64_t offset_ = 0;
};

}  // namespace zkml

#endif  // SRC_TENSOR_TENSOR_H_
