// Hand-scheduled x86-64 Montgomery multiplication for 4-limb moduli.
//
// The compiler's rendering of the CIOS loop in fp.h already uses MULX but
// serializes everything through one ADC chain with heavy register traffic
// (~330 instructions). This version keeps the five running limbs in fixed
// registers across all four outer iterations and splits the low-word and
// high-word accumulations onto the independent ADCX (CF) and ADOX (OF) carry
// chains, which is the layout the hardware's two carry flags exist for.
//
// Only compiled when the target has ADX + BMI2; fp.h falls back to the
// portable CIOS otherwise. The algorithm is plain CIOS, so the result is
// bit-identical to the portable path (ff_test cross-checks them).
#ifndef SRC_FF_MONT_MUL_X86_H_
#define SRC_FF_MONT_MUL_X86_H_

#include <cstdint>

#if defined(__x86_64__) && defined(__ADX__) && defined(__BMI2__) && \
    !defined(ZKML_DISABLE_SIMD_BUILD)
#define ZKML_HAVE_MONT_MUL_X86 1

namespace zkml {

// r = MontRed(a * b) for 4-limb little-endian operands; p is the modulus and
// inv = -p^{-1} mod 2^64. Requires p's top limb < 2^62 (the CIOS "no-carry"
// bound) so the folded carry limb cannot overflow. r may alias a or b.
inline void MontMul4x64(uint64_t* r, const uint64_t* a, const uint64_t* b, const uint64_t* p,
                        uint64_t inv) {
  // Register roles rotate each outer iteration: the reduction step shifts the
  // accumulator right one limb, so instead of moving data we rename
  // (t0..t3, t4) = (r8..r11, r12) -> (r9..r12, r8) -> ... Each iteration is
  // the same two blocks: accumulate a[i]*b into t (dual carry chains), then
  // fold in m*p where m = t0 * inv (the ADCX into t0 yields the implicit
  // one-limb shift).
  asm(
      // t = 0
      "xorq %%r8, %%r8\n\t"
      "xorq %%r9, %%r9\n\t"
      "xorq %%r10, %%r10\n\t"
      "xorq %%r11, %%r11\n\t"

#define ZKML_MM_ITER(AI, T0, T1, T2, T3, T4)                                  \
  /* t += a[i] * b; top word into T4 */                                       \
  "movq " AI "(%[a]), %%rdx\n\t"                                              \
  "xorq %%" T4 ", %%" T4 "\n\t" /* zero T4, clear CF+OF */                    \
  "mulxq 0(%[b]), %%rax, %%rbx\n\t"                                           \
  "adcxq %%rax, %%" T0 "\n\t"                                                 \
  "adoxq %%rbx, %%" T1 "\n\t"                                                 \
  "mulxq 8(%[b]), %%rax, %%rbx\n\t"                                           \
  "adcxq %%rax, %%" T1 "\n\t"                                                 \
  "adoxq %%rbx, %%" T2 "\n\t"                                                 \
  "mulxq 16(%[b]), %%rax, %%rbx\n\t"                                          \
  "adcxq %%rax, %%" T2 "\n\t"                                                 \
  "adoxq %%rbx, %%" T3 "\n\t"                                                 \
  "mulxq 24(%[b]), %%rax, %%rbx\n\t"                                          \
  "adcxq %%rax, %%" T3 "\n\t"                                                 \
  "adoxq %%rbx, %%" T4 "\n\t"                                                 \
  "movl $0, %%eax\n\t"                                                        \
  "adcxq %%rax, %%" T4 "\n\t"                                                 \
  /* t = (t + m*p) >> 64, m = t0 * inv */                                     \
  "movq %[inv], %%rdx\n\t"                                                    \
  "imulq %%" T0 ", %%rdx\n\t"                                                 \
  "xorq %%rax, %%rax\n\t" /* clear CF+OF */                                   \
  "mulxq 0(%[p]), %%rax, %%rbx\n\t"                                           \
  "adcxq %%rax, %%" T0 "\n\t" /* T0 becomes 0; carry out feeds the chain */   \
  "adoxq %%rbx, %%" T1 "\n\t"                                                 \
  "mulxq 8(%[p]), %%rax, %%rbx\n\t"                                           \
  "adcxq %%rax, %%" T1 "\n\t"                                                 \
  "adoxq %%rbx, %%" T2 "\n\t"                                                 \
  "mulxq 16(%[p]), %%rax, %%rbx\n\t"                                          \
  "adcxq %%rax, %%" T2 "\n\t"                                                 \
  "adoxq %%rbx, %%" T3 "\n\t"                                                 \
  "mulxq 24(%[p]), %%rax, %%rbx\n\t"                                          \
  "adcxq %%rax, %%" T3 "\n\t"                                                 \
  "adoxq %%rbx, %%" T4 "\n\t"                                                 \
  "movl $0, %%eax\n\t"                                                        \
  "adcxq %%rax, %%" T4 "\n\t"

      ZKML_MM_ITER("0", "r8", "r9", "r10", "r11", "r12")
      ZKML_MM_ITER("8", "r9", "r10", "r11", "r12", "r8")
      ZKML_MM_ITER("16", "r10", "r11", "r12", "r8", "r9")
      ZKML_MM_ITER("24", "r11", "r12", "r8", "r9", "r10")
#undef ZKML_MM_ITER

      // Result is (r12, r8, r9, r10); subtract p once if >= p.
      "movq %%r12, %%rax\n\t"
      "movq %%r8, %%rbx\n\t"
      "movq %%r9, %%rcx\n\t"
      "movq %%r10, %%rdx\n\t"
      "subq 0(%[p]), %%rax\n\t"
      "sbbq 8(%[p]), %%rbx\n\t"
      "sbbq 16(%[p]), %%rcx\n\t"
      "sbbq 24(%[p]), %%rdx\n\t"
      "cmovcq %%r12, %%rax\n\t"
      "cmovcq %%r8, %%rbx\n\t"
      "cmovcq %%r9, %%rcx\n\t"
      "cmovcq %%r10, %%rdx\n\t"
      "movq %%rax, 0(%[r])\n\t"
      "movq %%rbx, 8(%[r])\n\t"
      "movq %%rcx, 16(%[r])\n\t"
      "movq %%rdx, 24(%[r])\n\t"
      :
      : [r] "r"(r), [a] "r"(a), [b] "r"(b), [p] "r"(p), [inv] "r"(inv)
      : "rax", "rbx", "rcx", "rdx", "r8", "r9", "r10", "r11", "r12", "cc", "memory");
}

}  // namespace zkml

#endif  // __x86_64__ && __ADX__ && __BMI2__
#endif  // SRC_FF_MONT_MUL_X86_H_
