#include "src/ff/u256.h"

#include "src/base/check.h"

namespace zkml {

U256 U256::FromHex(const std::string& hex) {
  std::string s = hex;
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s = s.substr(2);
  }
  U256 r;
  int bit = 0;
  for (auto it = s.rbegin(); it != s.rend(); ++it, bit += 4) {
    char c = *it;
    uint64_t v;
    if (c >= '0' && c <= '9') {
      v = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      ZKML_CHECK_MSG(false, "invalid hex digit");
      v = 0;
    }
    ZKML_CHECK_MSG(bit < 256, "hex string too long for U256");
    r.limbs[bit / 64] |= v << (bit % 64);
  }
  return r;
}

int U256::HighestBit() const {
  for (int i = 3; i >= 0; --i) {
    if (limbs[i] != 0) {
      return i * 64 + 63 - __builtin_clzll(limbs[i]);
    }
  }
  return -1;
}

std::string U256::ToHex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string out = "0x";
  bool started = false;
  for (int i = 3; i >= 0; --i) {
    for (int nib = 15; nib >= 0; --nib) {
      uint64_t v = (limbs[i] >> (nib * 4)) & 0xf;
      if (v != 0) {
        started = true;
      }
      if (started) {
        out.push_back(kDigits[v]);
      }
    }
  }
  if (!started) {
    out.push_back('0');
  }
  return out;
}

U256 ShrU256(const U256& a, int s) {
  ZKML_DCHECK(s >= 0 && s < 256);
  U256 r;
  const int limb_shift = s / 64;
  const int bit_shift = s % 64;
  for (int i = 0; i < 4; ++i) {
    const int src = i + limb_shift;
    uint64_t lo = src < 4 ? a.limbs[src] : 0;
    uint64_t hi = src + 1 < 4 ? a.limbs[src + 1] : 0;
    r.limbs[i] = bit_shift == 0 ? lo : (lo >> bit_shift) | (hi << (64 - bit_shift));
  }
  return r;
}

}  // namespace zkml
