// Element-wise batched Montgomery multiplication over arrays of field
// elements, runtime-dispatched between the AVX-512 IFMA 8-lane kernel and the
// scalar path. Every path computes the canonical Montgomery product (reduced
// to [0, p)), so results are bit-identical regardless of dispatch — callers
// may treat BatchMul as a drop-in for an operator* loop.
//
// These are throughput primitives for the prover's hot loops: the quotient
// engine's coset pass, the evaluator's block mode, and the MSM's batched
// affine additions all spend most of their time in exactly this shape of
// loop (thousands of independent products over contiguous arrays).
#ifndef SRC_FF_BATCH_MUL_H_
#define SRC_FF_BATCH_MUL_H_

#include <cstddef>
#include <cstdint>

#include "src/ff/fp.h"

namespace zkml {
namespace internal {

// Per-modulus constants for the radix-52 IFMA kernel: the modulus in five
// 52-bit limbs and -p^{-1} mod 2^52 (the low 52 bits of the 64-bit inverse).
struct Ifma52Ctx {
  uint64_t p52[5];
  uint64_t p64[4];
  uint64_t inv52;
};

Ifma52Ctx BuildIfma52Ctx(const uint64_t* p64, uint64_t inv64);

// True when the executing CPU supports the IFMA kernel (ignores the
// ZKML_DISABLE_SIMD switches; used by tests to force the vector path).
bool IfmaSupportedByHardware();

// r[i] = MontRed(a[i] * b[i]) for 8*groups elements laid out as contiguous
// 4x64-bit little-endian limbs (32-byte stride). r may alias a or b.
// Requires IfmaSupportedByHardware().
void MontMulIfmaBatch(uint64_t* r, const uint64_t* a, const uint64_t* b, const Ifma52Ctx& ctx,
                      size_t groups);

// As above with a single broadcast right operand (4x64 limbs).
void MontMulIfmaBatchBroadcast(uint64_t* r, const uint64_t* a, const uint64_t* b,
                               const Ifma52Ctx& ctx, size_t groups);

// Resolved once at startup: hardware support AND not ZKML_DISABLE_SIMD.
bool UseIfmaKernels();

template <typename F>
const Ifma52Ctx& IfmaCtxFor() {
  static const Ifma52Ctx ctx = BuildIfma52Ctx(F::Ctx().modulus.limbs, F::ModNegInv());
  return ctx;
}

}  // namespace internal

// dst[i] = a[i] * b[i]. dst may alias a or b.
template <typename F>
void BatchMul(F* dst, const F* a, const F* b, size_t n) {
  static_assert(sizeof(F) == 4 * sizeof(uint64_t), "Fp must be four bare limbs");
  size_t i = 0;
  if (n >= 8 && internal::UseIfmaKernels()) {
    const size_t groups = n / 8;
    internal::MontMulIfmaBatch(reinterpret_cast<uint64_t*>(dst),
                               reinterpret_cast<const uint64_t*>(a),
                               reinterpret_cast<const uint64_t*>(b),
                               internal::IfmaCtxFor<F>(), groups);
    i = groups * 8;
  }
  for (; i < n; ++i) {
    dst[i] = a[i] * b[i];
  }
}

// dst[i] = a[i] * s. dst may alias a.
template <typename F>
void BatchMulScalar(F* dst, const F* a, const F& s, size_t n) {
  static_assert(sizeof(F) == 4 * sizeof(uint64_t), "Fp must be four bare limbs");
  size_t i = 0;
  if (n >= 8 && internal::UseIfmaKernels()) {
    const size_t groups = n / 8;
    internal::MontMulIfmaBatchBroadcast(reinterpret_cast<uint64_t*>(dst),
                                        reinterpret_cast<const uint64_t*>(a),
                                        reinterpret_cast<const uint64_t*>(&s),
                                        internal::IfmaCtxFor<F>(), groups);
    i = groups * 8;
  }
  for (; i < n; ++i) {
    dst[i] = a[i] * s;
  }
}

// dst[i] = a[i] * a[i].
template <typename F>
void BatchSquare(F* dst, const F* a, size_t n) {
  BatchMul(dst, a, a, n);
}

// Inverts x[0..n) in place; every element must be nonzero. Same contract as
// BatchInverseNonZero, but the ~3n multiplications run as SIMD BatchMuls
// instead of serial prefix-product chains: the array is folded in split
// halves (x[i] *= x[i+h], all contiguous — no gathers), recursing on the
// product half, then unfolded with two BatchMuls per level. One field
// inversion total, at the recursion base. `save` is caller-reusable scratch
// holding the pre-fold operands (grows to ~2n elements).
template <typename F>
void BatchInverseFlatNonZero(F* x, size_t n, std::vector<F>& save, std::vector<F>& scratch) {
  if (n < 128 || !internal::UseIfmaKernels()) {
    BatchInverseNonZero(x, n, scratch);
    return;
  }
  const size_t h = n / 2;
  const bool odd = (n & 1) != 0;
  const size_t base = save.size();
  save.insert(save.end(), x, x + 2 * h);
  BatchMul(x, x, x + h, h);  // fold: x[i] = a_i * a_{i+h}
  if (odd) {
    x[h] = x[2 * h];  // carry the unpaired element into the recursion
  }
  BatchInverseFlatNonZero(x, h + (odd ? 1 : 0), save, scratch);
  if (odd) {
    x[2 * h] = x[h];  // its inverse goes straight back
  }
  // Unfold: with P[i] = 1/(a_i * a_{i+h}) in x[0..h), recover both inverses.
  // Second half first (it reads all of P), then first half in place.
  BatchMul(x + h, x, save.data() + base, h);          // 1/a_{i+h} = P[i] * a_i
  BatchMul(x, x, save.data() + base + h, h);          // 1/a_i     = P[i] * a_{i+h}
  save.resize(base);
}

}  // namespace zkml

#endif  // SRC_FF_BATCH_MUL_H_
