#include "src/ff/fp.h"

namespace zkml {

MontgomeryContext MontgomeryContext::Build(const U256& modulus) {
  MontgomeryContext ctx;
  ctx.modulus = modulus;
  ctx.bits = modulus.HighestBit() + 1;

  // inv = -p^{-1} mod 2^64 via Newton iteration: x_{k+1} = x_k (2 - p x_k).
  const uint64_t p0 = modulus.limbs[0];
  uint64_t x = 1;
  for (int i = 0; i < 6; ++i) {
    x *= 2 - p0 * x;
  }
  ctx.inv = ~x + 1;  // -x mod 2^64

  // R = 2^256 mod p by repeated doubling of 1.
  U256 r = U256::FromU64(1);
  for (int i = 0; i < 256; ++i) {
    U256 doubled;
    uint64_t carry = AddU256(r, r, &doubled);
    if (carry != 0 || CmpU256(doubled, modulus) >= 0) {
      SubU256(doubled, modulus, &doubled);
    }
    r = doubled;
  }
  ctx.r = r;

  // R^2 = 2^512 mod p: double R another 256 times.
  U256 r2 = r;
  for (int i = 0; i < 256; ++i) {
    U256 doubled;
    uint64_t carry = AddU256(r2, r2, &doubled);
    if (carry != 0 || CmpU256(doubled, modulus) >= 0) {
      SubU256(doubled, modulus, &doubled);
    }
    r2 = doubled;
  }
  ctx.r2 = r2;

  SubU256(modulus, U256::FromU64(2), &ctx.p_minus_2);
  return ctx;
}

}  // namespace zkml
