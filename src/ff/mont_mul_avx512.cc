// Eight-lane Montgomery multiplication with AVX-512 IFMA (vpmadd52luq /
// vpmadd52huq), one independent product per 64-bit lane.
//
// Layout: operands arrive in the field elements' natural memory form —
// contiguous 4x64-bit little-endian limbs — and are transposed in registers
// to limb-major vectors, converted to radix-52 (five limbs), multiplied with
// a 5-step CIOS whose per-step products come from the 52-bit multiplier, and
// converted back. The 52-bit CIOS runs R = 2^260 instead of the scalar
// path's 2^256; pre-scaling the right operand by 2^4 during the radix
// conversion (b' = 16b, still < 2^260) makes the reduction compute
// a*b*2^4*2^-260 = a*b*2^-256 — exactly the scalar result. The final value
// is < 2p (a*b' < p*2^258 keeps the Montgomery bound), so one lane-masked
// conditional subtract canonicalizes, and the output is bit-identical to the
// scalar ADX and portable CIOS paths (cross-checked in ff_test).
//
// Carry discipline: accumulator lanes are 64-bit while limbs are 52-bit, so
// each lane absorbs ~2^12 worth of deferred carries; a limb passes through at
// most five accumulation steps (< 2^57 total) before it is shifted out, so
// nothing can wrap. Only t0's carry is propagated per step (it must be, to
// form the next m); the rest settle in one normalization pass at the end.
#include "src/ff/batch_mul.h"

#include "src/base/cpu_features.h"

#if defined(__x86_64__)
#include <immintrin.h>
#define ZKML_IFMA_TARGET __attribute__((target("avx512f,avx512dq,avx512vl,avx512ifma")))
#endif

namespace zkml {
namespace internal {

Ifma52Ctx BuildIfma52Ctx(const uint64_t* p64, uint64_t inv64) {
  Ifma52Ctx ctx;
  constexpr uint64_t kMask52 = (1ULL << 52) - 1;
  ctx.p52[0] = p64[0] & kMask52;
  ctx.p52[1] = ((p64[0] >> 52) | (p64[1] << 12)) & kMask52;
  ctx.p52[2] = ((p64[1] >> 40) | (p64[2] << 24)) & kMask52;
  ctx.p52[3] = ((p64[2] >> 28) | (p64[3] << 36)) & kMask52;
  ctx.p52[4] = p64[3] >> 16;
  for (int i = 0; i < 4; ++i) {
    ctx.p64[i] = p64[i];
  }
  // -p^{-1} mod 2^52 is the low 52 bits of -p^{-1} mod 2^64.
  ctx.inv52 = inv64 & kMask52;
  return ctx;
}

bool IfmaSupportedByHardware() {
#if defined(__x86_64__)
  const CpuFeatures& f = CpuFeatures::Get();
  return f.avx512f && f.avx512dq && f.avx512vl && f.avx512ifma;
#else
  return false;
#endif
}

bool UseIfmaKernels() {
  static const bool use =
      IfmaSupportedByHardware() && !CpuFeatures::Get().simd_disabled;
  return use;
}

#if defined(__x86_64__)

namespace {

// Transposes 8 consecutive field elements (4 limbs each, element-major) into
// four limb-major vectors L[l] = (e0.l, e1.l, ..., e7.l).
ZKML_IFMA_TARGET inline void LoadLimbMajor(const uint64_t* src, __m512i L[4]) {
  const __m512i z0 = _mm512_loadu_si512(src);
  const __m512i z1 = _mm512_loadu_si512(src + 8);
  const __m512i z2 = _mm512_loadu_si512(src + 16);
  const __m512i z3 = _mm512_loadu_si512(src + 24);
  const __m512i idx_lo = _mm512_setr_epi64(0, 4, 8, 12, 1, 5, 9, 13);
  const __m512i idx_hi = _mm512_setr_epi64(2, 6, 10, 14, 3, 7, 11, 15);
  // pXYl = limbs 0,1 of four elements; pXYh = limbs 2,3.
  const __m512i p01l = _mm512_permutex2var_epi64(z0, idx_lo, z1);
  const __m512i p01h = _mm512_permutex2var_epi64(z0, idx_hi, z1);
  const __m512i p23l = _mm512_permutex2var_epi64(z2, idx_lo, z3);
  const __m512i p23h = _mm512_permutex2var_epi64(z2, idx_hi, z3);
  const __m512i low = _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11);
  const __m512i high = _mm512_setr_epi64(4, 5, 6, 7, 12, 13, 14, 15);
  L[0] = _mm512_permutex2var_epi64(p01l, low, p23l);
  L[1] = _mm512_permutex2var_epi64(p01l, high, p23l);
  L[2] = _mm512_permutex2var_epi64(p01h, low, p23h);
  L[3] = _mm512_permutex2var_epi64(p01h, high, p23h);
}

// Inverse of LoadLimbMajor: stores four limb-major vectors as 8 consecutive
// element-major field elements.
ZKML_IFMA_TARGET inline void StoreElementMajor(uint64_t* dst, const __m512i L[4]) {
  const __m512i pair_lo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
  const __m512i pair_hi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
  // qN = (limb0, limb1) or (limb2, limb3) interleaved for four elements.
  const __m512i q0 = _mm512_permutex2var_epi64(L[0], pair_lo, L[1]);
  const __m512i q1 = _mm512_permutex2var_epi64(L[2], pair_lo, L[3]);
  const __m512i q2 = _mm512_permutex2var_epi64(L[0], pair_hi, L[1]);
  const __m512i q3 = _mm512_permutex2var_epi64(L[2], pair_hi, L[3]);
  const __m512i quad_lo = _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11);
  const __m512i quad_hi = _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15);
  _mm512_storeu_si512(dst, _mm512_permutex2var_epi64(q0, quad_lo, q1));
  _mm512_storeu_si512(dst + 8, _mm512_permutex2var_epi64(q0, quad_hi, q1));
  _mm512_storeu_si512(dst + 16, _mm512_permutex2var_epi64(q2, quad_lo, q3));
  _mm512_storeu_si512(dst + 24, _mm512_permutex2var_epi64(q2, quad_hi, q3));
}

// 4x64 limb-major -> 5x52 limb-major.
ZKML_IFMA_TARGET inline void ToRadix52(const __m512i L[4], __m512i out[5]) {
  const __m512i m52 = _mm512_set1_epi64((1ULL << 52) - 1);
  out[0] = _mm512_and_si512(L[0], m52);
  out[1] = _mm512_and_si512(
      _mm512_or_si512(_mm512_srli_epi64(L[0], 52), _mm512_slli_epi64(L[1], 12)), m52);
  out[2] = _mm512_and_si512(
      _mm512_or_si512(_mm512_srli_epi64(L[1], 40), _mm512_slli_epi64(L[2], 24)), m52);
  out[3] = _mm512_and_si512(
      _mm512_or_si512(_mm512_srli_epi64(L[2], 28), _mm512_slli_epi64(L[3], 36)), m52);
  out[4] = _mm512_srli_epi64(L[3], 16);
}

// 4x64 limb-major -> 5x52 limb-major of the value shifted left by 4 bits
// (the 2^4 pre-scale that aligns R = 2^260 with the scalar R = 2^256).
ZKML_IFMA_TARGET inline void ToRadix52Shl4(const __m512i L[4], __m512i out[5]) {
  const __m512i m52 = _mm512_set1_epi64((1ULL << 52) - 1);
  out[0] = _mm512_and_si512(_mm512_slli_epi64(L[0], 4), m52);
  out[1] = _mm512_and_si512(
      _mm512_or_si512(_mm512_srli_epi64(L[0], 48), _mm512_slli_epi64(L[1], 16)), m52);
  out[2] = _mm512_and_si512(
      _mm512_or_si512(_mm512_srli_epi64(L[1], 36), _mm512_slli_epi64(L[2], 28)), m52);
  out[3] = _mm512_and_si512(
      _mm512_or_si512(_mm512_srli_epi64(L[2], 24), _mm512_slli_epi64(L[3], 40)), m52);
  out[4] = _mm512_srli_epi64(L[3], 12);
}

// The CIOS core: a (radix-52) times b4 (radix-52, pre-scaled by 2^4), eight
// lanes at once, writing the canonical 4x64 result vectors into L.
ZKML_IFMA_TARGET inline void Cios52(const __m512i a52[5], const __m512i b4[5],
                                    const Ifma52Ctx& ctx, __m512i L[4]) {
  const __m512i zero = _mm512_setzero_si512();
  const __m512i m52 = _mm512_set1_epi64((1ULL << 52) - 1);
  const __m512i inv = _mm512_set1_epi64(ctx.inv52);
  __m512i p[5];
  for (int j = 0; j < 5; ++j) {
    p[j] = _mm512_set1_epi64(ctx.p52[j]);
  }
  __m512i t[6] = {zero, zero, zero, zero, zero, zero};
  for (int i = 0; i < 5; ++i) {
    const __m512i ai = a52[i];
    t[0] = _mm512_madd52lo_epu64(t[0], ai, b4[0]);
    t[1] = _mm512_madd52lo_epu64(t[1], ai, b4[1]);
    t[2] = _mm512_madd52lo_epu64(t[2], ai, b4[2]);
    t[3] = _mm512_madd52lo_epu64(t[3], ai, b4[3]);
    t[4] = _mm512_madd52lo_epu64(t[4], ai, b4[4]);
    t[1] = _mm512_madd52hi_epu64(t[1], ai, b4[0]);
    t[2] = _mm512_madd52hi_epu64(t[2], ai, b4[1]);
    t[3] = _mm512_madd52hi_epu64(t[3], ai, b4[2]);
    t[4] = _mm512_madd52hi_epu64(t[4], ai, b4[3]);
    t[5] = _mm512_madd52hi_epu64(t[5], ai, b4[4]);
    // m = low52(t0) * inv mod 2^52; adding m*p zeroes t0's low 52 bits.
    const __m512i m = _mm512_and_si512(_mm512_madd52lo_epu64(zero, t[0], inv), m52);
    t[0] = _mm512_madd52lo_epu64(t[0], m, p[0]);
    const __m512i carry = _mm512_srli_epi64(t[0], 52);
    t[1] = _mm512_add_epi64(t[1], carry);
    t[1] = _mm512_madd52hi_epu64(t[1], m, p[0]);
    t[1] = _mm512_madd52lo_epu64(t[1], m, p[1]);
    t[2] = _mm512_madd52hi_epu64(t[2], m, p[1]);
    t[2] = _mm512_madd52lo_epu64(t[2], m, p[2]);
    t[3] = _mm512_madd52hi_epu64(t[3], m, p[2]);
    t[3] = _mm512_madd52lo_epu64(t[3], m, p[3]);
    t[4] = _mm512_madd52hi_epu64(t[4], m, p[3]);
    t[4] = _mm512_madd52lo_epu64(t[4], m, p[4]);
    t[5] = _mm512_madd52hi_epu64(t[5], m, p[4]);
    // Shift the accumulator one limb right (t0 is now a multiple of 2^52 and
    // its carry has been folded into t1).
    t[0] = t[1];
    t[1] = t[2];
    t[2] = t[3];
    t[3] = t[4];
    t[4] = t[5];
    t[5] = zero;
  }
  // Settle deferred carries into clean 52-bit limbs.
  for (int j = 0; j < 4; ++j) {
    const __m512i carry = _mm512_srli_epi64(t[j], 52);
    t[j] = _mm512_and_si512(t[j], m52);
    t[j + 1] = _mm512_add_epi64(t[j + 1], carry);
  }
  // Back to 4x64 limbs. The value is < 2p < 2^255, so t[4] < 2^47.
  __m512i r[4];
  r[0] = _mm512_or_si512(t[0], _mm512_slli_epi64(t[1], 52));
  r[1] = _mm512_or_si512(_mm512_srli_epi64(t[1], 12), _mm512_slli_epi64(t[2], 40));
  r[2] = _mm512_or_si512(_mm512_srli_epi64(t[2], 24), _mm512_slli_epi64(t[3], 28));
  r[3] = _mm512_or_si512(_mm512_srli_epi64(t[3], 36), _mm512_slli_epi64(t[4], 16));
  // Lane-masked conditional subtract of p (borrow chain over four limbs).
  __m512i p64[4];
  for (int j = 0; j < 4; ++j) {
    p64[j] = _mm512_set1_epi64(ctx.p64[j]);
  }
  __m512i d[4];
  d[0] = _mm512_sub_epi64(r[0], p64[0]);
  __mmask8 borrow = _mm512_cmplt_epu64_mask(r[0], p64[0]);
  for (int j = 1; j < 4; ++j) {
    const __m512i s = _mm512_sub_epi64(r[j], p64[j]);
    const __mmask8 lt = _mm512_cmplt_epu64_mask(r[j], p64[j]);
    const __mmask8 eq_borrow =
        _kand_mask8(borrow, _mm512_cmpeq_epu64_mask(s, zero));
    d[j] = _mm512_mask_sub_epi64(s, borrow, s, _mm512_set1_epi64(1));
    borrow = _kor_mask8(lt, eq_borrow);
  }
  // Lanes that borrowed were already < p: keep r there, take d elsewhere.
  for (int j = 0; j < 4; ++j) {
    L[j] = _mm512_mask_blend_epi64(borrow, d[j], r[j]);
  }
}

}  // namespace

ZKML_IFMA_TARGET void MontMulIfmaBatch(uint64_t* r, const uint64_t* a, const uint64_t* b,
                                       const Ifma52Ctx& ctx, size_t groups) {
  for (size_t g = 0; g < groups; ++g) {
    __m512i La[4], Lb[4], a52[5], b4[5], Lr[4];
    LoadLimbMajor(a + g * 32, La);
    LoadLimbMajor(b + g * 32, Lb);
    ToRadix52(La, a52);
    ToRadix52Shl4(Lb, b4);
    Cios52(a52, b4, ctx, Lr);
    StoreElementMajor(r + g * 32, Lr);
  }
}

ZKML_IFMA_TARGET void MontMulIfmaBatchBroadcast(uint64_t* r, const uint64_t* a,
                                                const uint64_t* b, const Ifma52Ctx& ctx,
                                                size_t groups) {
  // Broadcast the single right operand once: each limb vector holds the same
  // value in all lanes, so the CIOS core is unchanged.
  __m512i Lb[4], b4[5];
  for (int j = 0; j < 4; ++j) {
    Lb[j] = _mm512_set1_epi64(b[j]);
  }
  ToRadix52Shl4(Lb, b4);
  for (size_t g = 0; g < groups; ++g) {
    __m512i La[4], a52[5], Lr[4];
    LoadLimbMajor(a + g * 32, La);
    ToRadix52(La, a52);
    Cios52(a52, b4, ctx, Lr);
    StoreElementMajor(r + g * 32, Lr);
  }
}

#else  // !__x86_64__

void MontMulIfmaBatch(uint64_t*, const uint64_t*, const uint64_t*, const Ifma52Ctx&, size_t) {}
void MontMulIfmaBatchBroadcast(uint64_t*, const uint64_t*, const uint64_t*, const Ifma52Ctx&,
                               size_t) {}

#endif  // __x86_64__

}  // namespace internal
}  // namespace zkml
