// Raw 256-bit little-endian limb arithmetic. These are the building blocks for
// the Montgomery field implementation in fp.h; they carry no modular
// semantics themselves.
#ifndef SRC_FF_U256_H_
#define SRC_FF_U256_H_

#include <array>
#include <cstdint>
#include <string>

namespace zkml {

struct U256 {
  // limbs[0] is least significant.
  uint64_t limbs[4] = {0, 0, 0, 0};

  static U256 Zero() { return U256{}; }
  static U256 FromU64(uint64_t v) {
    U256 r;
    r.limbs[0] = v;
    return r;
  }
  // Parses a big-endian hex string (no 0x prefix required but accepted).
  static U256 FromHex(const std::string& hex);

  bool IsZero() const {
    return limbs[0] == 0 && limbs[1] == 0 && limbs[2] == 0 && limbs[3] == 0;
  }
  bool IsOdd() const { return (limbs[0] & 1) != 0; }

  bool operator==(const U256& o) const {
    return limbs[0] == o.limbs[0] && limbs[1] == o.limbs[1] && limbs[2] == o.limbs[2] &&
           limbs[3] == o.limbs[3];
  }
  bool operator!=(const U256& o) const { return !(*this == o); }

  // Index of the highest set bit, or -1 when zero.
  int HighestBit() const;
  bool Bit(int i) const { return (limbs[i / 64] >> (i % 64)) & 1; }

  std::string ToHex() const;
};

// Returns -1, 0, 1 for a < b, a == b, a > b. Inline (as are the add/sub
// primitives below): these sit under every Montgomery operation, and the
// out-of-line call overhead is measurable across a whole proof.
inline int CmpU256(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.limbs[i] < b.limbs[i]) {
      return -1;
    }
    if (a.limbs[i] > b.limbs[i]) {
      return 1;
    }
  }
  return 0;
}

// r = a + b; returns the carry-out bit.
inline uint64_t AddU256(const U256& a, const U256& b, U256* r) {
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 cur = carry + a.limbs[i] + b.limbs[i];
    r->limbs[i] = static_cast<uint64_t>(cur);
    carry = cur >> 64;
  }
  return static_cast<uint64_t>(carry);
}

// r = a - b; returns the borrow-out bit.
inline uint64_t SubU256(const U256& a, const U256& b, U256* r) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 cur = static_cast<unsigned __int128>(a.limbs[i]) - b.limbs[i] - borrow;
    r->limbs[i] = static_cast<uint64_t>(cur);
    borrow = (cur >> 64) & 1;
  }
  return static_cast<uint64_t>(borrow);
}
// In-place right shift by s bits (0 <= s < 256).
U256 ShrU256(const U256& a, int s);

}  // namespace zkml

#endif  // SRC_FF_U256_H_
