// The two BN254 fields used throughout:
//   Fr — the scalar field (circuit values, polynomials); 2-adicity 28, so FFT
//        domains up to 2^28 exist, matching the paper's trusted-setup bound.
//   Fq — the base field of the G1 curve group.
#ifndef SRC_FF_FIELDS_H_
#define SRC_FF_FIELDS_H_

#include "src/ff/fp.h"
#include "src/ff/u256.h"

namespace zkml {

// The modulus limbs are constexpr so the Montgomery hot path can fold them
// (and -p^{-1} mod 2^64) into instruction immediates instead of loading them
// through the runtime context on every operation. Each kModulusHex is
// cross-checked against the limbs in ff_test so a typo cannot survive.
struct FrParams {
  // 21888242871839275222246405745257275088548364400416034343698204186575808495617
  static constexpr const char* kModulusHex =
      "30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001";
  static constexpr uint64_t kModulusLimbs[4] = {0x43e1f593f0000001ULL, 0x2833e84879b97091ULL,
                                                0xb85045b68181585dULL, 0x30644e72e131a029ULL};
  static const U256& Modulus() {
    static const U256 m{{kModulusLimbs[0], kModulusLimbs[1], kModulusLimbs[2], kModulusLimbs[3]}};
    return m;
  }
  static constexpr uint64_t kGenerator = 5;  // multiplicative generator of Fr*
  static constexpr int kTwoAdicity = 28;
};

struct FqParams {
  // 21888242871839275222246405745257275088696311157297823662689037894645226208583
  static constexpr const char* kModulusHex =
      "30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47";
  static constexpr uint64_t kModulusLimbs[4] = {0x3c208c16d87cfd47ULL, 0x97816a916871ca8dULL,
                                                0xb85045b68181585dULL, 0x30644e72e131a029ULL};
  static const U256& Modulus() {
    static const U256 m{{kModulusLimbs[0], kModulusLimbs[1], kModulusLimbs[2], kModulusLimbs[3]}};
    return m;
  }
};

using Fr = Fp<FrParams>;
using Fq = Fp<FqParams>;

// Primitive 2^k-th root of unity in Fr (k <= 28).
Fr FrRootOfUnity(int k);

// The coset separator delta = g^{2^S} used by the permutation argument: the
// sets {delta^i * omega^j} are pairwise disjoint for distinct i.
Fr FrDelta();

// Square root in Fq (q == 3 mod 4, so sqrt(a) = a^{(q+1)/4}). Returns false if
// `a` is a non-residue.
bool FqSqrt(const Fq& a, Fq* out);

}  // namespace zkml

#endif  // SRC_FF_FIELDS_H_
