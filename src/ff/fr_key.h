// Allocation-free hash-map key for field elements.
//
// The lookup-multiplicity pass builds an unordered_map keyed by field value
// for every table row; keying it by std::string (one heap allocation per
// insert/probe) made the hashing dominate the pass. FrKey stores the
// canonical limbs inline and precomputes the hash at construction, so map
// operations touch no allocator.
#ifndef SRC_FF_FR_KEY_H_
#define SRC_FF_FR_KEY_H_

#include <cstddef>
#include <cstdint>

#include "src/ff/fields.h"

namespace zkml {

struct FrKey {
  uint64_t limbs[4];
  uint64_t hash;

  explicit FrKey(const Fr& v) {
    const U256 c = v.ToCanonical();
    uint64_t h = 0x243f6a8885a308d3ULL;  // arbitrary non-zero seed
    for (int i = 0; i < 4; ++i) {
      limbs[i] = c.limbs[i];
      // splitmix64-style mix per limb; canonical limbs are unique per field
      // element, so equal keys always produce equal hashes.
      uint64_t x = c.limbs[i] + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i + 1);
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      h ^= x ^ (x >> 31);
      h *= 0x100000001b3ULL;
    }
    hash = h;
  }

  bool operator==(const FrKey& o) const {
    return limbs[0] == o.limbs[0] && limbs[1] == o.limbs[1] && limbs[2] == o.limbs[2] &&
           limbs[3] == o.limbs[3];
  }
};

struct FrKeyHash {
  size_t operator()(const FrKey& k) const { return static_cast<size_t>(k.hash); }
};

}  // namespace zkml

#endif  // SRC_FF_FR_KEY_H_
