// Generic prime-field element in Montgomery form over a 254/255-bit modulus.
//
// The Params tag type supplies the modulus (and, for FFT-friendly fields, a
// multiplicative generator and two-adicity). All Montgomery constants (R mod
// p, R^2 mod p, -p^{-1} mod 2^64) are derived at first use so no hand-typed
// magic constants can silently be wrong.
#ifndef SRC_FF_FP_H_
#define SRC_FF_FP_H_

#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/rng.h"
#include "src/ff/mont_mul_x86.h"
#include "src/ff/u256.h"

namespace zkml {

struct MontgomeryContext {
  U256 modulus;
  U256 r;         // 2^256 mod p (the Montgomery form of 1)
  U256 r2;        // 2^512 mod p (used to convert into Montgomery form)
  U256 p_minus_2; // exponent for Fermat inversion
  uint64_t inv;   // -p^{-1} mod 2^64
  int bits;       // bit length of p

  static MontgomeryContext Build(const U256& modulus);
};

template <typename Params>
class Fp {
 public:
  Fp() = default;

  static const MontgomeryContext& Ctx() {
    static const MontgomeryContext ctx = MontgomeryContext::Build(Params::Modulus());
    return ctx;
  }

  // Compile-time modulus and -p^{-1} mod 2^64. The hot arithmetic below uses
  // these instead of Ctx() so the limbs become instruction immediates; Ctx()
  // still serves the cold paths (conversion constants, inversion exponent).
  static constexpr U256 Mod() {
    return U256{{Params::kModulusLimbs[0], Params::kModulusLimbs[1], Params::kModulusLimbs[2],
                 Params::kModulusLimbs[3]}};
  }
  static constexpr uint64_t ModNegInv() {
    uint64_t x = 1;  // Newton iteration: x_{k+1} = x_k (2 - p x_k) mod 2^64
    for (int i = 0; i < 6; ++i) {
      x *= 2 - Params::kModulusLimbs[0] * x;
    }
    return ~x + 1;
  }
  // Two spare bits in the top limb make the fused CIOS carries safe. Both
  // BN254 fields qualify; the generic double-wide path remains as fallback.
  static constexpr bool kNoCarry = Params::kModulusLimbs[3] < (1ULL << 62);

  static Fp Zero() { return Fp(); }
  static Fp One() {
    Fp r;
    r.v_ = Ctx().r;
    return r;
  }

  static Fp FromU64(uint64_t x) { return FromCanonical(U256::FromU64(x)); }

  // Signed embedding: negative integers map to p - |x|.
  static Fp FromInt64(int64_t x) {
    if (x >= 0) {
      return FromU64(static_cast<uint64_t>(x));
    }
    return FromU64(static_cast<uint64_t>(-x)).Neg();
  }

  // `raw` must already be reduced (< p).
  static Fp FromCanonical(const U256& raw) {
    ZKML_DCHECK(CmpU256(raw, Ctx().modulus) < 0);
    Fp r;
    r.v_ = MontMul(raw, Ctx().r2);
    return r;
  }

  static Fp FromHex(const std::string& hex) { return FromCanonical(U256::FromHex(hex)); }

  // Uniform random element by rejection sampling.
  static Fp Random(Rng& rng) {
    const MontgomeryContext& ctx = Ctx();
    for (;;) {
      U256 raw;
      for (uint64_t& l : raw.limbs) {
        l = rng.NextU64();
      }
      // Clear bits above the modulus bit-length to make acceptance likely.
      const int top = ctx.bits;
      for (int b = 255; b >= top; --b) {
        raw.limbs[b / 64] &= ~(1ULL << (b % 64));
      }
      if (CmpU256(raw, ctx.modulus) < 0) {
        return FromCanonical(raw);
      }
    }
  }

  U256 ToCanonical() const { return MontMul(v_, U256::FromU64(1)); }

  // Decodes a field element that is known to encode a small signed integer
  // (|x| < 2^63): canonical values above p/2 are interpreted as negative.
  int64_t ToCenteredInt64() const {
    const MontgomeryContext& ctx = Ctx();
    U256 c = ToCanonical();
    U256 half = ShrU256(ctx.modulus, 1);
    if (CmpU256(c, half) > 0) {
      U256 neg;
      SubU256(ctx.modulus, c, &neg);
      ZKML_CHECK_MSG(neg.limbs[1] == 0 && neg.limbs[2] == 0 && neg.limbs[3] == 0 &&
                         neg.limbs[0] <= static_cast<uint64_t>(INT64_MAX),
                     "field element does not fit a centered int64");
      return -static_cast<int64_t>(neg.limbs[0]);
    }
    ZKML_CHECK_MSG(c.limbs[1] == 0 && c.limbs[2] == 0 && c.limbs[3] == 0 &&
                       c.limbs[0] <= static_cast<uint64_t>(INT64_MAX),
                   "field element does not fit a centered int64");
    return static_cast<int64_t>(c.limbs[0]);
  }

  bool IsZero() const { return v_.IsZero(); }

  bool operator==(const Fp& o) const { return v_ == o.v_; }
  bool operator!=(const Fp& o) const { return !(v_ == o.v_); }

  Fp operator+(const Fp& o) const {
    constexpr U256 kMod = Mod();
    Fp r;
    const uint64_t carry = AddU256(v_, o.v_, &r.v_);
    U256 s;
    const uint64_t borrow = SubU256(r.v_, kMod, &s);
    if (carry != 0 || borrow == 0) {
      r.v_ = s;
    }
    return r;
  }

  Fp operator-(const Fp& o) const {
    constexpr U256 kMod = Mod();
    Fp r;
    uint64_t borrow = SubU256(v_, o.v_, &r.v_);
    if (borrow != 0) {
      AddU256(r.v_, kMod, &r.v_);
    }
    return r;
  }

  Fp operator*(const Fp& o) const {
    Fp r;
    r.v_ = MontMul(v_, o.v_);
    return r;
  }

  Fp& operator+=(const Fp& o) { return *this = *this + o; }
  Fp& operator-=(const Fp& o) { return *this = *this - o; }
  Fp& operator*=(const Fp& o) { return *this = *this * o; }

  Fp Neg() const {
    constexpr U256 kMod = Mod();
    if (IsZero()) {
      return *this;
    }
    Fp r;
    SubU256(kMod, v_, &r.v_);
    return r;
  }
  Fp operator-() const { return Neg(); }

  Fp Double() const { return *this + *this; }
  Fp Square() const { return *this * *this; }

  Fp Pow(const U256& e) const {
    Fp acc = One();
    int hb = e.HighestBit();
    for (int i = hb; i >= 0; --i) {
      acc = acc.Square();
      if (e.Bit(i)) {
        acc = acc * *this;
      }
    }
    return acc;
  }
  Fp Pow(uint64_t e) const { return Pow(U256::FromU64(e)); }

  // Fermat inversion; returns zero for zero (callers that care must check).
  Fp Inverse() const {
    if (IsZero()) {
      return Zero();
    }
    return Pow(Ctx().p_minus_2);
  }

  // Multiplication through the portable CIOS paths, bypassing the asm
  // dispatch in MontMul. Exists so ff_test can cross-check all three
  // implementations on the same inputs; not for production use.
  static Fp MulPortableNoCarry(const Fp& a, const Fp& b) {
    static_assert(kNoCarry, "field does not satisfy the no-carry bound");
    Fp r;
    r.v_ = MontMulNoCarry(a.v_, b.v_);
    return r;
  }
  static Fp MulPortableGeneric(const Fp& a, const Fp& b) {
    Fp r;
    r.v_ = MontMulGeneric(a.v_, b.v_, Ctx());
    return r;
  }

  // Internal Montgomery representation (for serialization fast paths).
  const U256& MontgomeryForm() const { return v_; }
  static Fp FromMontgomeryForm(const U256& v) {
    Fp r;
    r.v_ = v;
    return r;
  }

 private:
  static U256 MontMul(const U256& a, const U256& b) {
    if constexpr (kNoCarry) {
#ifdef ZKML_HAVE_MONT_MUL_X86
      static constexpr U256 kMod = Mod();
      U256 r;
      MontMul4x64(r.limbs, a.limbs, b.limbs, kMod.limbs, ModNegInv());
      return r;
#else
      return MontMulNoCarry(a, b);
#endif
    } else {
      return MontMulGeneric(a, b, Ctx());
    }
  }

  // Fused multiply-and-reduce CIOS ("no-carry" variant): interleaves the
  // a[i]*b accumulation and the m*p reduction per outer limb, keeping each
  // running carry in a single 64-bit word. Valid only when the top limb of p
  // leaves two spare bits (kNoCarry), which guarantees A + C below cannot
  // wrap. Identical output to the generic path, ~25% fewer carry chains.
  static U256 MontMulNoCarry(const U256& a, const U256& b) {
    constexpr U256 kMod = Mod();
    constexpr uint64_t kInv = ModNegInv();
    const uint64_t* p = kMod.limbs;
    uint64_t t[4] = {0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
      unsigned __int128 cur = static_cast<unsigned __int128>(a.limbs[i]) * b.limbs[0] + t[0];
      uint64_t A = static_cast<uint64_t>(cur >> 64);
      const uint64_t t0 = static_cast<uint64_t>(cur);
      const uint64_t m = t0 * kInv;
      cur = static_cast<unsigned __int128>(m) * p[0] + t0;
      uint64_t C = static_cast<uint64_t>(cur >> 64);
      for (int j = 1; j < 4; ++j) {
        cur = static_cast<unsigned __int128>(a.limbs[i]) * b.limbs[j] + t[j] + A;
        A = static_cast<uint64_t>(cur >> 64);
        cur = static_cast<unsigned __int128>(m) * p[j] + static_cast<uint64_t>(cur) + C;
        C = static_cast<uint64_t>(cur >> 64);
        t[j - 1] = static_cast<uint64_t>(cur);
      }
      t[3] = A + C;
    }
    // Single borrow-chain subtract doubles as the >= p comparison; the
    // limb-by-limb CmpU256 branches mispredict badly on random field data.
    U256 r{{t[0], t[1], t[2], t[3]}};
    U256 s;
    if (SubU256(r, kMod, &s) == 0) {
      r = s;
    }
    return r;
  }

  static U256 MontMulGeneric(const U256& a, const U256& b, const MontgomeryContext& ctx) {
    const uint64_t* p = ctx.modulus.limbs;
    uint64_t t[6] = {0, 0, 0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
      // t += a[i] * b
      unsigned __int128 carry = 0;
      for (int j = 0; j < 4; ++j) {
        unsigned __int128 cur =
            static_cast<unsigned __int128>(a.limbs[i]) * b.limbs[j] + t[j] + carry;
        t[j] = static_cast<uint64_t>(cur);
        carry = cur >> 64;
      }
      unsigned __int128 sum = static_cast<unsigned __int128>(t[4]) + carry;
      t[4] = static_cast<uint64_t>(sum);
      t[5] = static_cast<uint64_t>(sum >> 64);

      // Reduction: add m*p where m = t[0] * (-p^{-1}) so t[0] vanishes.
      const uint64_t m = t[0] * ctx.inv;
      unsigned __int128 cur = static_cast<unsigned __int128>(m) * p[0] + t[0];
      carry = cur >> 64;
      for (int j = 1; j < 4; ++j) {
        cur = static_cast<unsigned __int128>(m) * p[j] + t[j] + carry;
        t[j - 1] = static_cast<uint64_t>(cur);
        carry = cur >> 64;
      }
      sum = static_cast<unsigned __int128>(t[4]) + carry;
      t[3] = static_cast<uint64_t>(sum);
      t[4] = t[5] + static_cast<uint64_t>(sum >> 64);
      t[5] = 0;
    }
    U256 r{{t[0], t[1], t[2], t[3]}};
    U256 s;
    const uint64_t borrow = SubU256(r, ctx.modulus, &s);
    if (t[4] != 0 || borrow == 0) {
      r = s;
    }
    return r;
  }

  U256 v_;  // Montgomery form: v_ = x * 2^256 mod p
};

// Inverts n elements known to be nonzero, in place, using Montgomery's batch
// trick with four interleaved prefix chains. A single running product is a
// serial multiply chain bound by full MontMul latency; four independent
// chains let the core overlap them. `prefix` is caller-provided scratch so
// hot loops can reuse the allocation. Inverses are unique, so the output is
// bit-identical to the single-chain variant below.
template <typename F>
void BatchInverseNonZero(F* xs, size_t n, std::vector<F>& prefix) {
  constexpr size_t K = 4;
  if (n == 0) {
    return;
  }
  prefix.resize(n);
  F acc[K] = {F::One(), F::One(), F::One(), F::One()};
  for (size_t i = 0; i < n; ++i) {
    prefix[i] = acc[i % K];
    acc[i % K] *= xs[i];
  }
  // Split the inverse of the combined product back into one inverse per
  // chain: acc[k]^{-1} = total^{-1} * prod_{j != k} acc[j].
  const F total_inv = (acc[0] * acc[1] * acc[2] * acc[3]).Inverse();
  F pre[K], suf[K];
  pre[0] = F::One();
  for (size_t k = 1; k < K; ++k) {
    pre[k] = pre[k - 1] * acc[k - 1];
  }
  suf[K - 1] = F::One();
  for (size_t k = K - 1; k-- > 0;) {
    suf[k] = suf[k + 1] * acc[k + 1];
  }
  F inv[K];
  for (size_t k = 0; k < K; ++k) {
    inv[k] = total_inv * pre[k] * suf[k];
  }
  for (size_t i = n; i-- > 0;) {
    const F orig = xs[i];
    xs[i] = inv[i % K] * prefix[i];
    inv[i % K] *= orig;
  }
}

// Inverts every nonzero element of `xs` in place using Montgomery's batch
// trick (one field inversion + 3n multiplications). Zero entries stay zero.
template <typename F>
void BatchInverse(std::vector<F>* xs) {
  const size_t n = xs->size();
  std::vector<F> prefix(n);
  F acc = F::One();
  for (size_t i = 0; i < n; ++i) {
    prefix[i] = acc;
    if (!(*xs)[i].IsZero()) {
      acc *= (*xs)[i];
    }
  }
  F inv = acc.Inverse();
  for (size_t i = n; i-- > 0;) {
    if ((*xs)[i].IsZero()) {
      continue;
    }
    F orig = (*xs)[i];
    (*xs)[i] = inv * prefix[i];
    inv *= orig;
  }
}

}  // namespace zkml

#endif  // SRC_FF_FP_H_
