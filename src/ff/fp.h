// Generic prime-field element in Montgomery form over a 254/255-bit modulus.
//
// The Params tag type supplies the modulus (and, for FFT-friendly fields, a
// multiplicative generator and two-adicity). All Montgomery constants (R mod
// p, R^2 mod p, -p^{-1} mod 2^64) are derived at first use so no hand-typed
// magic constants can silently be wrong.
#ifndef SRC_FF_FP_H_
#define SRC_FF_FP_H_

#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/base/rng.h"
#include "src/ff/u256.h"

namespace zkml {

struct MontgomeryContext {
  U256 modulus;
  U256 r;         // 2^256 mod p (the Montgomery form of 1)
  U256 r2;        // 2^512 mod p (used to convert into Montgomery form)
  U256 p_minus_2; // exponent for Fermat inversion
  uint64_t inv;   // -p^{-1} mod 2^64
  int bits;       // bit length of p

  static MontgomeryContext Build(const U256& modulus);
};

template <typename Params>
class Fp {
 public:
  Fp() = default;

  static const MontgomeryContext& Ctx() {
    static const MontgomeryContext ctx = MontgomeryContext::Build(Params::Modulus());
    return ctx;
  }

  static Fp Zero() { return Fp(); }
  static Fp One() {
    Fp r;
    r.v_ = Ctx().r;
    return r;
  }

  static Fp FromU64(uint64_t x) { return FromCanonical(U256::FromU64(x)); }

  // Signed embedding: negative integers map to p - |x|.
  static Fp FromInt64(int64_t x) {
    if (x >= 0) {
      return FromU64(static_cast<uint64_t>(x));
    }
    return FromU64(static_cast<uint64_t>(-x)).Neg();
  }

  // `raw` must already be reduced (< p).
  static Fp FromCanonical(const U256& raw) {
    ZKML_DCHECK(CmpU256(raw, Ctx().modulus) < 0);
    Fp r;
    r.v_ = MontMul(raw, Ctx().r2);
    return r;
  }

  static Fp FromHex(const std::string& hex) { return FromCanonical(U256::FromHex(hex)); }

  // Uniform random element by rejection sampling.
  static Fp Random(Rng& rng) {
    const MontgomeryContext& ctx = Ctx();
    for (;;) {
      U256 raw;
      for (uint64_t& l : raw.limbs) {
        l = rng.NextU64();
      }
      // Clear bits above the modulus bit-length to make acceptance likely.
      const int top = ctx.bits;
      for (int b = 255; b >= top; --b) {
        raw.limbs[b / 64] &= ~(1ULL << (b % 64));
      }
      if (CmpU256(raw, ctx.modulus) < 0) {
        return FromCanonical(raw);
      }
    }
  }

  U256 ToCanonical() const { return MontMul(v_, U256::FromU64(1)); }

  // Decodes a field element that is known to encode a small signed integer
  // (|x| < 2^63): canonical values above p/2 are interpreted as negative.
  int64_t ToCenteredInt64() const {
    const MontgomeryContext& ctx = Ctx();
    U256 c = ToCanonical();
    U256 half = ShrU256(ctx.modulus, 1);
    if (CmpU256(c, half) > 0) {
      U256 neg;
      SubU256(ctx.modulus, c, &neg);
      ZKML_CHECK_MSG(neg.limbs[1] == 0 && neg.limbs[2] == 0 && neg.limbs[3] == 0 &&
                         neg.limbs[0] <= static_cast<uint64_t>(INT64_MAX),
                     "field element does not fit a centered int64");
      return -static_cast<int64_t>(neg.limbs[0]);
    }
    ZKML_CHECK_MSG(c.limbs[1] == 0 && c.limbs[2] == 0 && c.limbs[3] == 0 &&
                       c.limbs[0] <= static_cast<uint64_t>(INT64_MAX),
                   "field element does not fit a centered int64");
    return static_cast<int64_t>(c.limbs[0]);
  }

  bool IsZero() const { return v_.IsZero(); }

  bool operator==(const Fp& o) const { return v_ == o.v_; }
  bool operator!=(const Fp& o) const { return !(v_ == o.v_); }

  Fp operator+(const Fp& o) const {
    const MontgomeryContext& ctx = Ctx();
    Fp r;
    uint64_t carry = AddU256(v_, o.v_, &r.v_);
    if (carry != 0 || CmpU256(r.v_, ctx.modulus) >= 0) {
      SubU256(r.v_, ctx.modulus, &r.v_);
    }
    return r;
  }

  Fp operator-(const Fp& o) const {
    Fp r;
    uint64_t borrow = SubU256(v_, o.v_, &r.v_);
    if (borrow != 0) {
      AddU256(r.v_, Ctx().modulus, &r.v_);
    }
    return r;
  }

  Fp operator*(const Fp& o) const {
    Fp r;
    r.v_ = MontMul(v_, o.v_);
    return r;
  }

  Fp& operator+=(const Fp& o) { return *this = *this + o; }
  Fp& operator-=(const Fp& o) { return *this = *this - o; }
  Fp& operator*=(const Fp& o) { return *this = *this * o; }

  Fp Neg() const {
    if (IsZero()) {
      return *this;
    }
    Fp r;
    SubU256(Ctx().modulus, v_, &r.v_);
    return r;
  }
  Fp operator-() const { return Neg(); }

  Fp Double() const { return *this + *this; }
  Fp Square() const { return *this * *this; }

  Fp Pow(const U256& e) const {
    Fp acc = One();
    int hb = e.HighestBit();
    for (int i = hb; i >= 0; --i) {
      acc = acc.Square();
      if (e.Bit(i)) {
        acc = acc * *this;
      }
    }
    return acc;
  }
  Fp Pow(uint64_t e) const { return Pow(U256::FromU64(e)); }

  // Fermat inversion; returns zero for zero (callers that care must check).
  Fp Inverse() const {
    if (IsZero()) {
      return Zero();
    }
    return Pow(Ctx().p_minus_2);
  }

  // Internal Montgomery representation (for serialization fast paths).
  const U256& MontgomeryForm() const { return v_; }
  static Fp FromMontgomeryForm(const U256& v) {
    Fp r;
    r.v_ = v;
    return r;
  }

 private:
  static U256 MontMul(const U256& a, const U256& b) {
    const MontgomeryContext& ctx = Ctx();
    const uint64_t* p = ctx.modulus.limbs;
    uint64_t t[6] = {0, 0, 0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
      // t += a[i] * b
      unsigned __int128 carry = 0;
      for (int j = 0; j < 4; ++j) {
        unsigned __int128 cur =
            static_cast<unsigned __int128>(a.limbs[i]) * b.limbs[j] + t[j] + carry;
        t[j] = static_cast<uint64_t>(cur);
        carry = cur >> 64;
      }
      unsigned __int128 sum = static_cast<unsigned __int128>(t[4]) + carry;
      t[4] = static_cast<uint64_t>(sum);
      t[5] = static_cast<uint64_t>(sum >> 64);

      // Reduction: add m*p where m = t[0] * (-p^{-1}) so t[0] vanishes.
      const uint64_t m = t[0] * ctx.inv;
      unsigned __int128 cur = static_cast<unsigned __int128>(m) * p[0] + t[0];
      carry = cur >> 64;
      for (int j = 1; j < 4; ++j) {
        cur = static_cast<unsigned __int128>(m) * p[j] + t[j] + carry;
        t[j - 1] = static_cast<uint64_t>(cur);
        carry = cur >> 64;
      }
      sum = static_cast<unsigned __int128>(t[4]) + carry;
      t[3] = static_cast<uint64_t>(sum);
      t[4] = t[5] + static_cast<uint64_t>(sum >> 64);
      t[5] = 0;
    }
    U256 r{{t[0], t[1], t[2], t[3]}};
    if (t[4] != 0 || CmpU256(r, ctx.modulus) >= 0) {
      SubU256(r, ctx.modulus, &r);
    }
    return r;
  }

  U256 v_;  // Montgomery form: v_ = x * 2^256 mod p
};

// Inverts every nonzero element of `xs` in place using Montgomery's batch
// trick (one field inversion + 3n multiplications). Zero entries stay zero.
template <typename F>
void BatchInverse(std::vector<F>* xs) {
  const size_t n = xs->size();
  std::vector<F> prefix(n);
  F acc = F::One();
  for (size_t i = 0; i < n; ++i) {
    prefix[i] = acc;
    if (!(*xs)[i].IsZero()) {
      acc *= (*xs)[i];
    }
  }
  F inv = acc.Inverse();
  for (size_t i = n; i-- > 0;) {
    if ((*xs)[i].IsZero()) {
      continue;
    }
    F orig = (*xs)[i];
    (*xs)[i] = inv * prefix[i];
    inv *= orig;
  }
}

}  // namespace zkml

#endif  // SRC_FF_FP_H_
