#include "src/ff/fields.h"

#include "src/base/check.h"

namespace zkml {

Fr FrRootOfUnity(int k) {
  ZKML_CHECK_MSG(k >= 0 && k <= FrParams::kTwoAdicity, "FFT domain too large for Fr");
  U256 p_minus_1;
  SubU256(FrParams::Modulus(), U256::FromU64(1), &p_minus_1);
  U256 exponent = ShrU256(p_minus_1, k);
  return Fr::FromU64(FrParams::kGenerator).Pow(exponent);
}

Fr FrDelta() {
  // g^{2^S}: exponent is 1 << 28.
  U256 e;
  e.limbs[0] = 1ULL << FrParams::kTwoAdicity;
  return Fr::FromU64(FrParams::kGenerator).Pow(e);
}

bool FqSqrt(const Fq& a, Fq* out) {
  if (a.IsZero()) {
    *out = Fq::Zero();
    return true;
  }
  U256 q_plus_1;
  AddU256(FqParams::Modulus(), U256::FromU64(1), &q_plus_1);
  U256 exponent = ShrU256(q_plus_1, 2);
  Fq candidate = a.Pow(exponent);
  if (candidate * candidate == a) {
    *out = candidate;
    return true;
  }
  return false;
}

}  // namespace zkml
