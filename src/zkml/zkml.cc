#include "src/zkml/zkml.h"

#include "src/base/check.h"
#include "src/base/timer.h"
#include "src/compiler/compiler.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/plonk/mock_prover.h"
#include "src/plonk/prover.h"
#include "src/plonk/verifier.h"

namespace zkml {

std::shared_ptr<Pcs> MakePcsBackend(PcsKind kind, size_t max_len, uint64_t seed) {
  if (kind == PcsKind::kKzg) {
    return std::make_shared<KzgPcs>(std::make_shared<KzgSetup>(KzgSetup::Create(max_len, seed)));
  }
  return std::make_shared<IpaPcs>(std::make_shared<IpaSetup>(IpaSetup::Create(max_len, seed)));
}

CompiledModel CompileModelWithLayout(const Model& model, const PhysicalLayout& layout,
                                     const ZkmlOptions& options) {
  obs::Span compile_span("compile");
  CompiledModel compiled;
  compiled.model = model;
  compiled.layout = layout;
  compiled.predicted_cost =
      EstimateProvingCost(layout, HardwareProfile::Cached(), options.backend);
  // Honesty check: the cost model's prediction sits next to the measured
  // prove time (see Prove) in the metrics registry.
  obs::MetricsRegistry::Global()
      .gauge("optimizer.predicted_prove_seconds")
      .Set(compiled.predicted_cost.total_seconds);

  const size_t n = static_cast<size_t>(1) << layout.k;
  compiled.pcs = MakePcsBackend(options.backend, n, options.setup_seed);

  Timer keygen_timer;
  // Keygen runs on the zero-input circuit: fixed columns and copy constraints
  // are input-independent (the graph has no data-dependent control flow).
  // Batched layouts (layout.batch > 1) replicate the zero inference so the
  // keys cover every inference's advice region.
  Tensor<int64_t> zero(model.input_shape);
  size_t num_instance_rows = 0;
  std::unique_ptr<CircuitBuilder> builder;
  {
    obs::Span build_span("compile-build-circuit");
    if (layout.batch > 1) {
      std::vector<Tensor<int64_t>> zeros(layout.batch, zero);
      BuiltBatchedCircuit built = BuildBatchedCircuit(model, layout, zeros);
      builder = std::move(built.builder);
      num_instance_rows = built.num_instance_rows;
    } else {
      BuiltCircuit built = BuildCircuit(model, layout, zero);
      builder = std::move(built.builder);
      num_instance_rows = built.num_instance_rows;
    }
  }
  compiled.pk = Keygen(builder->cs(), builder->assignment(), *compiled.pcs, layout.k);
  // The instance layout is input-independent, so the zero-input build fixes
  // the statement length the verifier must insist on.
  compiled.pk.vk.num_instance_rows = num_instance_rows;
  compiled.keygen_seconds = keygen_timer.ElapsedSeconds();
  return compiled;
}

CompiledModel CompileModel(const Model& model, const ZkmlOptions& options) {
  OptimizerOptions opt = options.optimizer;
  opt.backend = options.backend;
  OptimizerResult result = OptimizeLayout(model, HardwareProfile::Cached(), opt);
  ZKML_CHECK_MSG(result.best.layout.k > 0, "optimizer found no feasible layout");
  CompiledModel compiled = CompileModelWithLayout(model, result.best.layout, options);
  compiled.optimizer_seconds = result.optimizer_seconds;
  return compiled;
}

StatusOr<ZkmlProof> ProveCancellable(const CompiledModel& compiled,
                                     const Tensor<int64_t>& input_q,
                                     const CancelToken* cancel) {
  ZkmlProof out;
  if (compiled.layout.batch > 1) {
    return InvalidArgumentError("model was compiled for batch size " +
                                std::to_string(compiled.layout.batch) +
                                "; use CreateBatchedProof");
  }
  ZKML_RETURN_IF_ERROR(CheckCancel(cancel, "witness-gen"));
  Timer witness_timer;
  BuiltCircuit built = [&] {
    obs::Span witness_span("witness-gen");
    return BuildCircuit(compiled.model, compiled.layout, input_q);
  }();
  out.witness_seconds = witness_timer.ElapsedSeconds();
  out.output_q = built.output_q;

  const Assignment& asn = built.builder->assignment();
  const std::vector<Fr>& inst = asn.instance()[0];
  out.instance.assign(inst.begin(), inst.begin() + built.num_instance_rows);

  Timer prove_timer;
  ZKML_ASSIGN_OR_RETURN(out.bytes, CreateProofCancellable(compiled.pk, *compiled.pcs, asn,
                                                          cancel, &out.prover_metrics));
  out.prove_seconds = prove_timer.ElapsedSeconds();
  obs::MetricsRegistry::Global().gauge("prover.measured_prove_seconds").Set(out.prove_seconds);
  return out;
}

ZkmlProof Prove(const CompiledModel& compiled, const Tensor<int64_t>& input_q) {
  StatusOr<ZkmlProof> proof = ProveCancellable(compiled, input_q, /*cancel=*/nullptr);
  ZKML_CHECK_MSG(proof.ok(), proof.status().ToString().c_str());
  return std::move(proof).value();
}

VerifyResult VerifyDetailed(const VerifyingKey& vk, const Pcs& pcs,
                            const std::vector<Fr>& instance,
                            const std::vector<uint8_t>& proof_bytes) {
  if (vk.num_instance_rows != 0 && instance.size() != vk.num_instance_rows) {
    return VerifyResult::Rejected(
        VerifyStage::kInstance,
        InvalidArgumentError("instance vector has " + std::to_string(instance.size()) +
                             " values, verifying key expects " +
                             std::to_string(vk.num_instance_rows)));
  }
  return VerifyProof(vk, pcs, {instance}, proof_bytes);
}

bool Verify(const VerifyingKey& vk, const Pcs& pcs, const std::vector<Fr>& instance,
            const std::vector<uint8_t>& proof_bytes) {
  return VerifyDetailed(vk, pcs, instance, proof_bytes).ok();
}

bool Verify(const CompiledModel& compiled, const ZkmlProof& proof) {
  return Verify(compiled.pk.vk, *compiled.pcs, proof.instance, proof.bytes);
}

bool SoundnessAudit::Passed() const {
  bool ok = !interrupted && witness_satisfied && coverage.dead_gates == 0 &&
            coverage.dead_lookups == 0 && mutation.AllDetected();
  if (forgery_ran) {
    ok = ok && honest_kzg_accepted && honest_ipa_accepted && forged_kzg_rejected &&
         forged_ipa_rejected;
  }
  return ok;
}

obs::Json SoundnessAudit::ToJson() const {
  obs::Json forgery;  // stays null (omitted) when the harness did not run
  if (forgery_ran) {
    forgery = obs::Json::Object();
    forgery.Set("honest_kzg_accepted", honest_kzg_accepted);
    forgery.Set("honest_ipa_accepted", honest_ipa_accepted);
    forgery.Set("forged_kzg_rejected", forged_kzg_rejected);
    forgery.Set("forged_ipa_rejected", forged_ipa_rejected);
  }
  obs::Json j = SoundnessReportJson(coverage, mutation, forgery);
  j.Set("witness_satisfied", witness_satisfied);
  j.Set("interrupted", interrupted);
  j.Set("passed", Passed());
  return j;
}

SoundnessAudit RunSoundnessAudit(const Model& model, const Tensor<int64_t>& input_q,
                                 const SoundnessAuditOptions& options) {
  obs::Span audit_span("soundness-audit");
  SoundnessAudit audit;
  // Interruption points sit between the audit engines: whatever completed
  // before the token fired is reported, and `interrupted` marks the report
  // as partial.
  auto interrupted = [&] {
    if (!CheckCancel(options.cancel, "soundness-audit").ok()) {
      audit.interrupted = true;
    }
    return audit.interrupted;
  };

  if (interrupted()) {
    return audit;
  }
  ZkmlOptions kzg_options;
  kzg_options.backend = PcsKind::kKzg;
  CompiledModel kzg = CompileModel(model, kzg_options);

  BuiltCircuit built = BuildCircuit(model, kzg.layout, input_q);
  const ConstraintSystem& cs = built.builder->cs();
  const Assignment& asn = built.builder->assignment();

  audit.witness_satisfied = MockProver(&cs, &asn).IsSatisfied();
  audit.coverage = AnalyzeCoverage(cs, asn);
  if (audit.witness_satisfied && !interrupted()) {
    // Fuzzing an unsatisfied witness would blame cells at random; coverage is
    // still meaningful (it only reads fixed columns and input activations).
    FuzzOptions fuzz;
    fuzz.seed = options.seed;
    fuzz.mutations_per_cell = options.mutations_per_cell;
    audit.mutation = FuzzWitness(cs, asn, fuzz);
  }

  if (options.run_forgery && !interrupted()) {
    audit.forgery_ran = true;
    ZkmlOptions ipa_options;
    ipa_options.backend = PcsKind::kIpa;
    // Same layout under the other backend so the harness compares verifiers,
    // not optimizer decisions.
    CompiledModel ipa = CompileModelWithLayout(model, kzg.layout, ipa_options);

    auto check_backend = [&](const CompiledModel& compiled, bool* honest_accepted,
                             bool* forged_rejected) {
      if (interrupted()) {
        return;
      }
      StatusOr<ZkmlProof> proof = ProveCancellable(compiled, input_q, options.cancel);
      if (!proof.ok()) {
        audit.interrupted = true;
        return;
      }
      *honest_accepted = Verify(compiled, *proof);
      // Tamper the claimed output (the statement's tail) and demand the
      // untouched proof no longer verifies against it.
      std::vector<Fr> forged = proof->instance;
      ZKML_CHECK(!forged.empty());
      forged.back() = forged.back() + Fr::One();
      *forged_rejected = !Verify(compiled.pk.vk, *compiled.pcs, forged, proof->bytes);
    };
    check_backend(kzg, &audit.honest_kzg_accepted, &audit.forged_kzg_rejected);
    check_backend(ipa, &audit.honest_ipa_accepted, &audit.forged_ipa_rejected);
  }
  return audit;
}

obs::RunReport BuildRunReport(const CompiledModel& compiled, const ZkmlProof& proof,
                              double verify_seconds, const std::string& model_name) {
  obs::RunReport report;
  report.model = model_name.empty() ? compiled.model.name : model_name;
  report.backend = dynamic_cast<const KzgPcs*>(compiled.pcs.get()) != nullptr ? "kzg" : "ipa";
  report.k = static_cast<uint32_t>(compiled.layout.k);
  report.num_columns = static_cast<uint32_t>(compiled.layout.num_columns);
  report.rows_used = compiled.layout.rows_used;
  report.num_lookups = compiled.layout.num_lookups;
  report.predicted_prove_seconds = compiled.predicted_cost.total_seconds;
  report.compile_seconds = compiled.optimizer_seconds + compiled.keygen_seconds;
  report.keygen_seconds = compiled.keygen_seconds;
  report.prove_seconds = proof.prove_seconds;
  report.verify_seconds = verify_seconds;
  report.proof_bytes = proof.bytes.size();
  for (const ProverStageMetrics& stage : proof.prover_metrics.stages) {
    report.stages.push_back({stage.name, stage.seconds, stage.kernels});
    report.kernels = report.kernels + stage.kernels;
  }
  report.rss_hwm_kb = obs::ReadRssHighWaterKb();
  return report;
}

}  // namespace zkml
