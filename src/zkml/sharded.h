// Sharded proving: the model DAG is cut at layer boundaries into k
// sub-circuits (src/compiler/partition.h), each proved concurrently on the
// ThreadPool, with the boundary activations carried as instance values that
// stitch adjacent shards together. Shard i's public statement is
// [boundary_i ‖ boundary_{i+1}]; the artifact stores each boundary vector
// exactly once, so adjacent shards cannot disagree about the activation they
// share. Under KZG the per-shard pairing checks are deferred and discharged
// by one random-linear-combination check (KzgAccumulator), so composite
// verification costs a single batched pairing instead of k.
#ifndef SRC_ZKML_SHARDED_H_
#define SRC_ZKML_SHARDED_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/base/cancel.h"
#include "src/base/status.h"
#include "src/compiler/partition.h"
#include "src/obs/json.h"
#include "src/zkml/zkml.h"

namespace zkml {

// Schema name shared by the binary artifact ("ZKSH" magic) and the JSON
// report document emitted for telemetry.
inline constexpr const char* kShardedProofSchema = "zkml.sharded_proof/v1";
inline constexpr uint32_t kShardedProofVersion = 1;

// A partitioned model with every shard compiled (layout + keys). Shards are
// held by shared_ptr so a serving cache can share per-shard compilations
// across sharded jobs.
struct CompiledShardedModel {
  Model model;  // the parent model
  ModelPartition partition;
  std::vector<std::shared_ptr<const CompiledModel>> shards;
  PcsKind backend = PcsKind::kKzg;
  double compile_seconds = 0;

  size_t num_shards() const { return shards.size(); }
};

// Shard count actually used for `requested`: 0 means auto (one shard per
// hardware thread), and any request is clamped to [1, MaxShards(model)].
size_t ResolveShardCount(const Model& model, size_t requested);

// Partitions the model (cost-model balanced cuts) and compiles every shard
// concurrently. `num_shards` is resolved via ResolveShardCount.
StatusOr<CompiledShardedModel> CompileSharded(const Model& model, size_t num_shards,
                                              const ZkmlOptions& options = {});

struct ShardedProof {
  // k+1 boundary activations as field elements: [0] is the model input,
  // [k] the model output, interior entries the stitched activations.
  std::vector<std::vector<Fr>> boundaries;
  std::vector<std::vector<uint8_t>> shard_proofs;
  // Composite public statement: boundaries.front() ‖ boundaries.back().
  std::vector<Fr> instance;
  Tensor<int64_t> output_q;
  double witness_seconds = 0;  // boundary-activation chain (sequential, cheap)
  double prove_seconds = 0;    // wall clock of the parallel prove phase
  std::vector<double> shard_prove_seconds;

  size_t ProofBytes() const;
};

// Invoked (possibly from pool threads) each time a shard's proof completes.
using ShardProgressFn = std::function<void(size_t shards_done, size_t shards_total)>;

// Chains the quantized executor through the shards to fix every boundary
// activation, then proves all shards concurrently on the global ThreadPool.
StatusOr<ShardedProof> CreateShardedProof(const CompiledShardedModel& compiled,
                                          const Tensor<int64_t>& input_q,
                                          const CancelToken* cancel = nullptr,
                                          const ShardProgressFn& progress = nullptr);

// --- zkml.sharded_proof/v1 binary artifact ---
//   "ZKSH" | u32 version | u32 k | (k+1) x (u32 len, len Fr) | k x (u32 len, bytes)
std::vector<uint8_t> EncodeShardedProof(const ShardedProof& proof);
// True when `bytes` starts with the sharded-artifact magic (format sniffing
// for readers that accept both single proofs and sharded artifacts).
bool LooksLikeShardedProof(const std::vector<uint8_t>& bytes);

struct DecodedShardedProof {
  std::vector<std::vector<Fr>> boundaries;
  std::vector<std::vector<uint8_t>> shard_proofs;
};
StatusOr<DecodedShardedProof> DecodeShardedProof(const std::vector<uint8_t>& bytes);

// Verifies a sharded artifact against the composite statement (input values
// then output values, exactly as the single-circuit verifier sees them).
// Checks the artifact's outer boundaries against the statement, verifies each
// shard against its stitched [b_i ‖ b_{i+1}] instance, and — under KZG —
// defers every shard's opening into one aggregate RLC pairing check.
// Rejections are stage-attributed; shard-local failures carry a "shard i:"
// message prefix.
VerifyResult VerifySharded(const CompiledShardedModel& compiled,
                           const std::vector<Fr>& instance,
                           const std::vector<uint8_t>& artifact);

// The JSON report document (schema kShardedProofSchema) for telemetry.
obs::Json ShardedReportJson(const CompiledShardedModel& compiled, const ShardedProof& proof,
                            double verify_seconds = 0.0);

}  // namespace zkml

#endif  // SRC_ZKML_SHARDED_H_
