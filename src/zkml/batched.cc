#include "src/zkml/batched.h"

#include "src/base/check.h"
#include "src/base/timer.h"
#include "src/compiler/compiler.h"
#include "src/obs/trace.h"
#include "src/plonk/proof_io.h"
#include "src/plonk/prover.h"

namespace zkml {
namespace {

constexpr uint8_t kBatchedMagic[4] = {'Z', 'K', 'B', 'P'};

Status ClaimStatus(size_t index, size_t count, const Status& status) {
  return Status(status.code(), "proof " + std::to_string(index) + "/" + std::to_string(count) +
                                   ": " + status.message());
}

}  // namespace

StatusOr<CompiledBatchedModel> CompileBatched(const Model& model, size_t batch,
                                              const ZkmlOptions& options) {
  obs::Span span("batched-compile");
  if (batch == 0) {
    return InvalidArgumentError("batched compile: batch size must be at least 1");
  }
  Timer timer;
  OptimizerOptions opt = options.optimizer;
  opt.backend = options.backend;
  opt.batch = batch;
  OptimizerResult result = OptimizeLayout(model, HardwareProfile::Cached(), opt);
  if (result.best.layout.k <= 0) {
    return InvalidArgumentError("batched compile: no feasible layout for batch " +
                                std::to_string(batch) + " within max_k " +
                                std::to_string(opt.max_k) +
                                " (shrink the batch or raise max_k)");
  }
  CompiledBatchedModel out;
  out.compiled = CompileModelWithLayout(model, result.best.layout, options);
  out.compiled.optimizer_seconds = result.optimizer_seconds;
  out.instance_offsets = BatchInstanceOffsets(out.compiled);
  out.compile_seconds = timer.ElapsedSeconds();
  return out;
}

std::vector<size_t> BatchInstanceOffsets(const CompiledModel& compiled) {
  const size_t batch = std::max<size_t>(1, compiled.layout.batch);
  const size_t rows = compiled.pk.vk.num_instance_rows;
  ZKML_CHECK_MSG(rows % batch == 0, "batched instance rows not divisible by batch");
  const size_t seg = rows / batch;
  std::vector<size_t> offsets;
  offsets.reserve(batch + 1);
  for (size_t i = 0; i <= batch; ++i) {
    offsets.push_back(i * seg);
  }
  return offsets;
}

size_t BatchedProof::ProofBytes() const {
  size_t n = 4 + 4 + 4;  // magic + version + batch count
  for (const std::vector<Fr>& inst : instances) {
    n += 4 + inst.size() * kProofFrSize;
  }
  n += 4 + bytes.size();
  return n;
}

StatusOr<BatchedProof> CreateBatchedProof(const CompiledModel& compiled,
                                          const std::vector<Tensor<int64_t>>& inputs_q,
                                          const CancelToken* cancel) {
  obs::Span span("batched-prove");
  const size_t batch = std::max<size_t>(1, compiled.layout.batch);
  if (inputs_q.size() != batch) {
    return InvalidArgumentError("batched prove: got " + std::to_string(inputs_q.size()) +
                                " inputs, model compiled for batch " + std::to_string(batch));
  }
  const Model& model = compiled.model;
  for (size_t i = 0; i < inputs_q.size(); ++i) {
    if (inputs_q[i].NumElements() != model.input_shape.NumElements()) {
      return InvalidArgumentError(
          "batched prove: input " + std::to_string(i) + " has " +
          std::to_string(inputs_q[i].NumElements()) + " elements, model '" + model.name +
          "' expects " + std::to_string(model.input_shape.NumElements()));
    }
  }

  BatchedProof out;
  ZKML_RETURN_IF_ERROR(CheckCancel(cancel, "batched-witness"));
  Timer witness_timer;
  BuiltBatchedCircuit built = [&] {
    obs::Span witness_span("batched-witness-gen");
    return BuildBatchedCircuit(model, compiled.layout, inputs_q);
  }();
  out.witness_seconds = witness_timer.ElapsedSeconds();
  out.outputs_q = std::move(built.outputs_q);

  const Assignment& asn = built.builder->assignment();
  const std::vector<Fr>& inst = asn.instance()[0];
  out.instance.assign(inst.begin(), inst.begin() + built.num_instance_rows);
  out.instances.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    out.instances.emplace_back(out.instance.begin() + built.instance_offsets[i],
                               out.instance.begin() + built.instance_offsets[i + 1]);
  }

  Timer prove_timer;
  ZKML_ASSIGN_OR_RETURN(out.bytes, CreateProofCancellable(compiled.pk, *compiled.pcs, asn,
                                                          cancel, &out.prover_metrics));
  out.prove_seconds = prove_timer.ElapsedSeconds();
  return out;
}

std::vector<uint8_t> EncodeBatchedProof(const BatchedProof& proof) {
  std::vector<uint8_t> out;
  out.reserve(proof.ProofBytes());
  out.insert(out.end(), kBatchedMagic, kBatchedMagic + 4);
  ProofAppendU32(&out, kBatchedProofVersion);
  ProofAppendU32(&out, static_cast<uint32_t>(proof.instances.size()));
  for (const std::vector<Fr>& inst : proof.instances) {
    ProofAppendU32(&out, static_cast<uint32_t>(inst.size()));
    for (const Fr& x : inst) {
      ProofAppendFr(&out, x);
    }
  }
  ProofAppendU32(&out, static_cast<uint32_t>(proof.bytes.size()));
  out.insert(out.end(), proof.bytes.begin(), proof.bytes.end());
  return out;
}

bool LooksLikeBatchedProof(const std::vector<uint8_t>& bytes) {
  return bytes.size() >= 4 && bytes[0] == kBatchedMagic[0] && bytes[1] == kBatchedMagic[1] &&
         bytes[2] == kBatchedMagic[2] && bytes[3] == kBatchedMagic[3];
}

StatusOr<DecodedBatchedProof> DecodeBatchedProof(const std::vector<uint8_t>& bytes) {
  if (!LooksLikeBatchedProof(bytes)) {
    return MalformedProofError("batched artifact: missing ZKBP magic");
  }
  size_t offset = 4;
  uint32_t version = 0;
  ZKML_RETURN_IF_ERROR(ProofReadU32(bytes, &offset, &version, "batched artifact version"));
  if (version != kBatchedProofVersion) {
    return MalformedProofError("batched artifact: unsupported version " +
                               std::to_string(version));
  }
  uint32_t batch = 0;
  ZKML_RETURN_IF_ERROR(ProofReadU32(bytes, &offset, &batch, "batch count"));
  // Each inference contributes a length-prefixed segment, so the count is
  // bounded by the remaining bytes — rejects absurd prefixes pre-allocation.
  if (batch == 0 || static_cast<size_t>(batch) * 4 > bytes.size() - offset) {
    return MalformedProofError("batched artifact: implausible batch count " +
                               std::to_string(batch));
  }
  DecodedBatchedProof out;
  out.instances.resize(batch);
  for (std::vector<Fr>& inst : out.instances) {
    uint32_t len = 0;
    ZKML_RETURN_IF_ERROR(ProofReadU32(bytes, &offset, &len, "instance segment length"));
    if (static_cast<size_t>(len) * kProofFrSize > bytes.size() - offset) {
      return MalformedProofError("batched artifact: instance segment length " +
                                 std::to_string(len) + " exceeds remaining bytes at offset " +
                                 std::to_string(offset));
    }
    inst.resize(len);
    for (Fr& x : inst) {
      ZKML_RETURN_IF_ERROR(ProofReadFr(bytes, &offset, &x, "instance segment value"));
    }
  }
  uint32_t proof_len = 0;
  ZKML_RETURN_IF_ERROR(ProofReadU32(bytes, &offset, &proof_len, "batched proof length"));
  if (static_cast<size_t>(proof_len) > bytes.size() - offset) {
    return MalformedProofError("batched artifact: proof length " + std::to_string(proof_len) +
                               " exceeds remaining bytes at offset " + std::to_string(offset));
  }
  out.proof.assign(bytes.begin() + static_cast<ptrdiff_t>(offset),
                   bytes.begin() + static_cast<ptrdiff_t>(offset + proof_len));
  offset += proof_len;
  ZKML_RETURN_IF_ERROR(ProofExpectEnd(bytes, offset));
  return out;
}

VerifyResult VerifyBatchedDetailed(const CompiledModel& compiled,
                                   const std::vector<Fr>& instance,
                                   const std::vector<uint8_t>& artifact) {
  obs::Span span("batched-verify");
  StatusOr<DecodedBatchedProof> decoded = DecodeBatchedProof(artifact);
  if (!decoded.ok()) {
    return VerifyResult::Rejected(VerifyStage::kBatchStitch, decoded.status());
  }
  const size_t batch = std::max<size_t>(1, compiled.layout.batch);
  if (decoded->instances.size() != batch) {
    return VerifyResult::Rejected(
        VerifyStage::kBatchStitch,
        InvalidArgumentError("artifact carries " + std::to_string(decoded->instances.size()) +
                             " inferences, model compiled for batch " + std::to_string(batch)));
  }
  if (instance.size() != compiled.pk.vk.num_instance_rows) {
    return VerifyResult::Rejected(
        VerifyStage::kInstance,
        InvalidArgumentError("batched statement has " + std::to_string(instance.size()) +
                             " values, verifying key expects " +
                             std::to_string(compiled.pk.vk.num_instance_rows)));
  }
  const std::vector<size_t> offsets = BatchInstanceOffsets(compiled);
  // The statement must be exactly the concatenation of the artifact's
  // per-inference segments: a disagreement names the inference whose claimed
  // statement was tampered. (A lie consistent between artifact and statement
  // still fails below — the transcript binds the instance.)
  size_t offset = 0;
  for (size_t i = 0; i < batch; ++i) {
    const std::vector<Fr>& seg = decoded->instances[i];
    const size_t expect = offsets[i + 1] - offsets[i];
    if (seg.size() != expect) {
      return VerifyResult::Rejected(
          VerifyStage::kBatchStitch,
          InvalidArgumentError("inference " + std::to_string(i) + ": artifact segment has " +
                               std::to_string(seg.size()) + " values, layout fixes " +
                               std::to_string(expect)));
    }
    for (size_t j = 0; j < seg.size(); ++j) {
      if (!(instance[offset + j] == seg[j])) {
        return VerifyResult::Rejected(
            VerifyStage::kBatchStitch,
            VerifyFailedError("inference " + std::to_string(i) +
                              ": statement disagrees with the proven instance at element " +
                              std::to_string(j)));
      }
    }
    offset += seg.size();
  }
  return VerifyDetailed(compiled.pk.vk, *compiled.pcs, instance, decoded->proof);
}

bool VerifyBatched(const CompiledBatchedModel& compiled, const BatchedProof& proof) {
  return VerifyBatchedDetailed(compiled, proof.instance, EncodeBatchedProof(proof)).ok();
}

obs::Json BatchedReportJson(const CompiledModel& cm, const BatchedProof& proof,
                            double compile_seconds, double verify_seconds) {
  const size_t batch = std::max<size_t>(1, cm.layout.batch);
  obs::Json doc = obs::Json::Object();
  doc.Set("schema", kBatchedProofSchema);
  doc.Set("model", cm.model.name);
  doc.Set("backend", dynamic_cast<const KzgPcs*>(cm.pcs.get()) != nullptr ? "kzg" : "ipa");
  doc.Set("batch", static_cast<uint64_t>(batch));
  doc.Set("k", static_cast<uint64_t>(cm.layout.k));
  doc.Set("num_columns", static_cast<uint64_t>(cm.layout.num_columns));
  doc.Set("rows_used", static_cast<uint64_t>(cm.layout.rows_used));
  doc.Set("compile_seconds", compile_seconds);
  doc.Set("witness_seconds", proof.witness_seconds);
  doc.Set("prove_seconds", proof.prove_seconds);
  doc.Set("prove_seconds_per_inference",
          proof.prove_seconds / static_cast<double>(batch));
  doc.Set("verify_seconds", verify_seconds);
  doc.Set("proof_bytes", static_cast<uint64_t>(proof.ProofBytes()));
  doc.Set("plonk_proof_bytes", static_cast<uint64_t>(proof.bytes.size()));
  obs::Json segments = obs::Json::Array();
  for (const std::vector<Fr>& inst : proof.instances) {
    segments.Append(static_cast<uint64_t>(inst.size()));
  }
  doc.Set("instance_elements", std::move(segments));
  return doc;
}

CrossProofVerdict VerifyProofsBatched(const std::vector<CrossProofClaim>& claims) {
  obs::Span span("cross-proof-verify");
  CrossProofVerdict verdict;
  if (claims.empty()) {
    verdict.status = InvalidArgumentError("cross-proof verify: no claims");
    verdict.stage = VerifyStage::kInstance;
    return verdict;
  }
  KzgAccumulator accumulator;
  std::shared_ptr<const KzgSetup> setup;
  for (size_t j = 0; j < claims.size(); ++j) {
    const CrossProofClaim& c = claims[j];
    if (c.vk == nullptr || c.pcs == nullptr || c.instance == nullptr || c.proof == nullptr) {
      verdict.status = ClaimStatus(j, claims.size(),
                                   InvalidArgumentError("cross-proof claim is incomplete"));
      verdict.stage = VerifyStage::kInstance;
      verdict.blamed.push_back(j);
      return verdict;
    }
    VerifyResult result;
    if (const auto* kzg = dynamic_cast<const KzgPcs*>(c.pcs)) {
      setup = kzg->shared_setup();
      accumulator.SetTag(j);
      KzgPcs deferred(setup, &accumulator);
      result = VerifyDetailed(*c.vk, deferred, *c.instance, *c.proof);
    } else {
      result = VerifyDetailed(*c.vk, *c.pcs, *c.instance, *c.proof);
    }
    if (!result.ok()) {
      // Transcript/evaluation failures are inherently per-proof, so blame is
      // immediate — no aggregate check needed to localize it.
      verdict.status = ClaimStatus(j, claims.size(), result.status);
      verdict.stage = result.stage;
      verdict.blamed.push_back(j);
      return verdict;
    }
  }
  if (accumulator.size() > 0) {
    const Status status = accumulator.Check(*setup, &verdict.blamed);
    if (!status.ok()) {
      verdict.status = status;
      verdict.stage = VerifyStage::kBatchAggregate;
      return verdict;
    }
  }
  verdict.status = Status::Ok();
  return verdict;
}

}  // namespace zkml
