// Batched multi-inference proving: N independent inferences of one model are
// laid out in a single circuit (src/compiler/compiler.h BuildBatchedCircuit),
// sharing fixed columns, lookup tables, and the permutation argument so
// per-inference proving cost falls below 1x as N grows. The circuit's public
// statement is the concatenation of per-inference [input ‖ output] segments;
// at N=1 the layout — and therefore the proof bytes — is identical to the
// single-circuit pipeline.
//
// This header also hosts cross-proof batch verification: K independent
// proofs' KZG opening checks folded into one random-linear-combination
// pairing check (the cross-proof generalization of the per-shard
// KzgAccumulator), with per-proof blame on rejection.
#ifndef SRC_ZKML_BATCHED_H_
#define SRC_ZKML_BATCHED_H_

#include <memory>
#include <vector>

#include "src/base/cancel.h"
#include "src/base/status.h"
#include "src/obs/json.h"
#include "src/zkml/zkml.h"

namespace zkml {

// Schema name shared by the binary artifact ("ZKBP" magic) and the JSON
// report document emitted for telemetry.
inline constexpr const char* kBatchedProofSchema = "zkml.batched_proof/v1";
inline constexpr uint32_t kBatchedProofVersion = 1;

// A model compiled for a fixed batch size: one circuit, one key pair, N
// replicated inference regions. Held by shared_ptr-friendly value semantics
// so the serving cache can share it across coalesced jobs.
struct CompiledBatchedModel {
  CompiledModel compiled;  // compiled.layout.batch == batch()
  // Per-inference instance segment boundaries as half-open row ranges
  // [instance_offsets[i], instance_offsets[i+1]); size batch() + 1.
  std::vector<size_t> instance_offsets;
  double compile_seconds = 0;

  size_t batch() const { return compiled.layout.batch; }
};

// Runs the optimizer with the batch dimension threaded through layout
// simulation (whole-batch cost is what gets ranked) and generates keys for
// the batched circuit. batch == 1 yields exactly CompileModel's circuit.
StatusOr<CompiledBatchedModel> CompileBatched(const Model& model, size_t batch,
                                              const ZkmlOptions& options = {});

// Per-inference instance segment boundaries recomputed from the compiled
// layout alone (every inference lowers identically, so the statement splits
// into layout.batch equal segments). Lets a holder of a bare CompiledModel —
// e.g. the serving cache — recover what CompiledBatchedModel carries.
std::vector<size_t> BatchInstanceOffsets(const CompiledModel& compiled);

struct BatchedProof {
  std::vector<uint8_t> bytes;  // ONE plonk proof covering every inference
  // Per-inference public statements, each [input ‖ output].
  std::vector<std::vector<Fr>> instances;
  // The circuit's statement: concatenation of `instances` in order.
  std::vector<Fr> instance;
  std::vector<Tensor<int64_t>> outputs_q;  // one per inference
  double witness_seconds = 0;
  double prove_seconds = 0;
  ProverMetrics prover_metrics;

  size_t ProofBytes() const;  // encoded artifact size
};

// Proves all `inputs` (size must equal compiled.layout.batch) in one
// circuit. With batch 1 the proof bytes are bit-identical to
// ProveCancellable's. The CompiledModel overload is the core (it needs no
// precomputed offsets — the built circuit reports them); the
// CompiledBatchedModel overload delegates.
StatusOr<BatchedProof> CreateBatchedProof(const CompiledModel& compiled,
                                          const std::vector<Tensor<int64_t>>& inputs_q,
                                          const CancelToken* cancel = nullptr);
inline StatusOr<BatchedProof> CreateBatchedProof(const CompiledBatchedModel& compiled,
                                                 const std::vector<Tensor<int64_t>>& inputs_q,
                                                 const CancelToken* cancel = nullptr) {
  return CreateBatchedProof(compiled.compiled, inputs_q, cancel);
}

// --- zkml.batched_proof/v1 binary artifact ---
//   "ZKBP" | u32 version | u32 batch | batch x (u32 len, len Fr)
//          | u32 proof_len | proof bytes
std::vector<uint8_t> EncodeBatchedProof(const BatchedProof& proof);
// True when `bytes` starts with the batched-artifact magic (format sniffing
// for readers that accept single proofs, sharded, and batched artifacts).
bool LooksLikeBatchedProof(const std::vector<uint8_t>& bytes);

struct DecodedBatchedProof {
  std::vector<std::vector<Fr>> instances;
  std::vector<uint8_t> proof;
};
StatusOr<DecodedBatchedProof> DecodeBatchedProof(const std::vector<uint8_t>& bytes);

// Verifies a batched artifact against the full concatenated statement. The
// artifact's per-inference segments must reproduce the statement exactly —
// a disagreement is rejected at kBatchStitch naming the inference whose
// segment was tampered — and the single proof is then verified against the
// concatenation (which the transcript binds, so a consistent lie in both the
// statement and the artifact still dies in the plonk verifier).
VerifyResult VerifyBatchedDetailed(const CompiledModel& compiled,
                                   const std::vector<Fr>& instance,
                                   const std::vector<uint8_t>& artifact);
inline VerifyResult VerifyBatchedDetailed(const CompiledBatchedModel& compiled,
                                          const std::vector<Fr>& instance,
                                          const std::vector<uint8_t>& artifact) {
  return VerifyBatchedDetailed(compiled.compiled, instance, artifact);
}
bool VerifyBatched(const CompiledBatchedModel& compiled, const BatchedProof& proof);

// The JSON report document (schema kBatchedProofSchema) for telemetry;
// includes prove_seconds_per_inference, the economics batching exists for.
obs::Json BatchedReportJson(const CompiledModel& compiled, const BatchedProof& proof,
                            double compile_seconds = 0.0, double verify_seconds = 0.0);
inline obs::Json BatchedReportJson(const CompiledBatchedModel& compiled,
                                   const BatchedProof& proof, double verify_seconds = 0.0) {
  return BatchedReportJson(compiled.compiled, proof, compiled.compile_seconds, verify_seconds);
}

// --- Cross-proof RLC verification ---

// One of K independent (vk, statement, proof) claims to verify together.
// Pointers are borrowed; they must outlive the VerifyProofsBatched call.
struct CrossProofClaim {
  const VerifyingKey* vk = nullptr;
  const Pcs* pcs = nullptr;
  const std::vector<Fr>* instance = nullptr;
  const std::vector<uint8_t>* proof = nullptr;
};

struct CrossProofVerdict {
  Status status;               // Ok iff every claim verified
  VerifyStage stage = VerifyStage::kAccepted;
  std::vector<size_t> blamed;  // indices of the claims blamed on rejection

  bool ok() const { return status.ok(); }
};

// Verifies K independent proofs, folding every KZG claim's final opening
// check into ONE RLC pairing check (KzgAccumulator with per-proof tags);
// non-KZG backends verify inline. On rejection the verdict blames the
// specific proof(s): transcript/evaluation failures are caught per proof,
// and an aggregate pairing failure re-checks each deferred claim to name
// the forged one. All KZG claims must come from setups sharing a trapdoor
// seed (true for every setup this repo creates with the same seed).
CrossProofVerdict VerifyProofsBatched(const std::vector<CrossProofClaim>& claims);

}  // namespace zkml

#endif  // SRC_ZKML_BATCHED_H_
