#include "src/zkml/sharded.h"

#include <atomic>
#include <optional>
#include <thread>

#include "src/base/check.h"
#include "src/base/thread_pool.h"
#include "src/base/timer.h"
#include "src/layers/quant_executor.h"
#include "src/obs/trace.h"
#include "src/plonk/proof_io.h"

namespace zkml {
namespace {

constexpr uint8_t kShardedMagic[4] = {'Z', 'K', 'S', 'H'};

// The instance encoding the circuit builder uses: one field element per
// activation value, inputs first.
std::vector<Fr> BoundaryToFr(const Tensor<int64_t>& t) {
  std::vector<Fr> out;
  out.reserve(static_cast<size_t>(t.NumElements()));
  for (int64_t v : t.ToVector()) {
    out.push_back(Fr::FromInt64(v));
  }
  return out;
}

Status ShardStatus(size_t shard, size_t num_shards, const Status& status) {
  return Status(status.code(), "shard " + std::to_string(shard) + "/" +
                                   std::to_string(num_shards) + ": " + status.message());
}

}  // namespace

size_t ResolveShardCount(const Model& model, size_t requested) {
  const size_t max_shards = MaxShards(model);
  size_t want = requested;
  if (want == 0) {
    want = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  return std::max<size_t>(1, std::min(want, max_shards));
}

StatusOr<CompiledShardedModel> CompileSharded(const Model& model, size_t num_shards,
                                              const ZkmlOptions& options) {
  obs::Span span("sharded-compile");
  Timer timer;
  const size_t k = ResolveShardCount(model, num_shards);
  ZKML_ASSIGN_OR_RETURN(ModelPartition partition, PartitionModel(model, k));
  CompiledShardedModel out;
  out.model = model;
  out.backend = options.backend;
  out.shards.resize(k);
  // Per-shard optimizer + keygen are independent; compile them concurrently.
  TaskGroup group;
  for (size_t i = 0; i < k; ++i) {
    group.Submit([&, i] {
      out.shards[i] =
          std::make_shared<const CompiledModel>(CompileModel(partition.shards[i].model, options));
    });
  }
  group.Wait();
  out.partition = std::move(partition);
  out.compile_seconds = timer.ElapsedSeconds();
  return out;
}

size_t ShardedProof::ProofBytes() const {
  size_t n = 4 + 4 + 4;  // magic + version + shard count
  for (const std::vector<Fr>& b : boundaries) {
    n += 4 + b.size() * kProofFrSize;
  }
  for (const std::vector<uint8_t>& p : shard_proofs) {
    n += 4 + p.size();
  }
  return n;
}

StatusOr<ShardedProof> CreateShardedProof(const CompiledShardedModel& compiled,
                                          const Tensor<int64_t>& input_q,
                                          const CancelToken* cancel,
                                          const ShardProgressFn& progress) {
  obs::Span span("sharded-prove");
  const size_t k = compiled.num_shards();
  if (k == 0) {
    return InvalidArgumentError("sharded prove: model compiled into zero shards");
  }
  if (input_q.NumElements() != compiled.model.input_shape.NumElements()) {
    return InvalidArgumentError("sharded prove: input has " +
                                std::to_string(input_q.NumElements()) + " elements, model '" +
                                compiled.model.name + "' expects " +
                                std::to_string(compiled.model.input_shape.NumElements()));
  }

  ShardedProof out;
  ZKML_RETURN_IF_ERROR(CheckCancel(cancel, "sharded-witness"));

  // Fix every boundary activation up front by chaining the quantized executor
  // (the same fixed-point semantics the circuits constrain); proving can then
  // start on every shard at once instead of waiting for upstream proofs.
  Timer witness_timer;
  std::vector<Tensor<int64_t>> boundary_q;
  boundary_q.reserve(k + 1);
  boundary_q.push_back(input_q);
  for (size_t i = 0; i + 1 < k; ++i) {
    boundary_q.push_back(RunQuantized(compiled.shards[i]->model, boundary_q.back()));
  }
  boundary_q.push_back(RunQuantized(compiled.shards[k - 1]->model, boundary_q.back()));
  out.witness_seconds = witness_timer.ElapsedSeconds();
  out.output_q = boundary_q.back();
  out.boundaries.reserve(k + 1);
  for (const Tensor<int64_t>& b : boundary_q) {
    out.boundaries.push_back(BoundaryToFr(b));
  }
  out.instance = out.boundaries.front();
  out.instance.insert(out.instance.end(), out.boundaries.back().begin(),
                      out.boundaries.back().end());

  Timer prove_timer;
  std::vector<std::optional<StatusOr<ZkmlProof>>> results(k);
  std::atomic<size_t> done{0};
  TaskGroup group;
  for (size_t i = 0; i < k; ++i) {
    group.Submit([&, i] {
      results[i].emplace(ProveCancellable(*compiled.shards[i], boundary_q[i], cancel));
      const size_t n = done.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (progress) {
        progress(n, k);
      }
    });
  }
  group.Wait();
  out.prove_seconds = prove_timer.ElapsedSeconds();

  out.shard_proofs.resize(k);
  out.shard_prove_seconds.resize(k);
  for (size_t i = 0; i < k; ++i) {
    StatusOr<ZkmlProof>& r = *results[i];
    if (!r.ok()) {
      return ShardStatus(i, k, r.status());
    }
    // The executor chain and the in-circuit witness must agree on every
    // boundary; a divergence here is a bug, not bad input, but surfacing it
    // as a Status keeps the daemon alive.
    const std::vector<Fr>& expect_in = out.boundaries[i];
    const std::vector<Fr>& expect_out = out.boundaries[i + 1];
    const std::vector<Fr>& inst = r->instance;
    bool stitched = inst.size() == expect_in.size() + expect_out.size();
    for (size_t j = 0; stitched && j < inst.size(); ++j) {
      const Fr& want =
          j < expect_in.size() ? expect_in[j] : expect_out[j - expect_in.size()];
      stitched = inst[j] == want;
    }
    if (!stitched) {
      return ShardStatus(i, k,
                         InternalError("shard witness disagrees with the boundary "
                                       "activation chain (executor/circuit divergence)"));
    }
    out.shard_proofs[i] = std::move(r->bytes);
    out.shard_prove_seconds[i] = r->prove_seconds;
  }
  return out;
}

std::vector<uint8_t> EncodeShardedProof(const ShardedProof& proof) {
  std::vector<uint8_t> out;
  out.reserve(proof.ProofBytes());
  out.insert(out.end(), kShardedMagic, kShardedMagic + 4);
  ProofAppendU32(&out, kShardedProofVersion);
  ProofAppendU32(&out, static_cast<uint32_t>(proof.shard_proofs.size()));
  for (const std::vector<Fr>& b : proof.boundaries) {
    ProofAppendU32(&out, static_cast<uint32_t>(b.size()));
    for (const Fr& x : b) {
      ProofAppendFr(&out, x);
    }
  }
  for (const std::vector<uint8_t>& p : proof.shard_proofs) {
    ProofAppendU32(&out, static_cast<uint32_t>(p.size()));
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

bool LooksLikeShardedProof(const std::vector<uint8_t>& bytes) {
  return bytes.size() >= 4 && bytes[0] == kShardedMagic[0] && bytes[1] == kShardedMagic[1] &&
         bytes[2] == kShardedMagic[2] && bytes[3] == kShardedMagic[3];
}

StatusOr<DecodedShardedProof> DecodeShardedProof(const std::vector<uint8_t>& bytes) {
  if (!LooksLikeShardedProof(bytes)) {
    return MalformedProofError("sharded artifact: missing ZKSH magic");
  }
  size_t offset = 4;
  uint32_t version = 0;
  ZKML_RETURN_IF_ERROR(ProofReadU32(bytes, &offset, &version, "sharded artifact version"));
  if (version != kShardedProofVersion) {
    return MalformedProofError("sharded artifact: unsupported version " +
                               std::to_string(version));
  }
  uint32_t num_shards = 0;
  ZKML_RETURN_IF_ERROR(ProofReadU32(bytes, &offset, &num_shards, "shard count"));
  // Every shard contributes a length-prefixed proof and boundary, so the
  // count is bounded by the remaining bytes — rejects absurd prefixes before
  // any allocation.
  if (num_shards == 0 || static_cast<size_t>(num_shards) * 8 > bytes.size() - offset) {
    return MalformedProofError("sharded artifact: implausible shard count " +
                               std::to_string(num_shards));
  }
  DecodedShardedProof out;
  out.boundaries.resize(num_shards + 1);
  for (std::vector<Fr>& b : out.boundaries) {
    uint32_t len = 0;
    ZKML_RETURN_IF_ERROR(ProofReadU32(bytes, &offset, &len, "boundary length"));
    if (static_cast<size_t>(len) * kProofFrSize > bytes.size() - offset) {
      return MalformedProofError("sharded artifact: boundary length " + std::to_string(len) +
                                 " exceeds remaining bytes at offset " + std::to_string(offset));
    }
    b.resize(len);
    for (Fr& x : b) {
      ZKML_RETURN_IF_ERROR(ProofReadFr(bytes, &offset, &x, "boundary activation"));
    }
  }
  out.shard_proofs.resize(num_shards);
  for (std::vector<uint8_t>& p : out.shard_proofs) {
    uint32_t len = 0;
    ZKML_RETURN_IF_ERROR(ProofReadU32(bytes, &offset, &len, "shard proof length"));
    if (static_cast<size_t>(len) > bytes.size() - offset) {
      return MalformedProofError("sharded artifact: shard proof length " + std::to_string(len) +
                                 " exceeds remaining bytes at offset " + std::to_string(offset));
    }
    p.assign(bytes.begin() + static_cast<ptrdiff_t>(offset),
             bytes.begin() + static_cast<ptrdiff_t>(offset + len));
    offset += len;
  }
  ZKML_RETURN_IF_ERROR(ProofExpectEnd(bytes, offset));
  return out;
}

VerifyResult VerifySharded(const CompiledShardedModel& compiled,
                           const std::vector<Fr>& instance,
                           const std::vector<uint8_t>& artifact) {
  obs::Span span("sharded-verify");
  StatusOr<DecodedShardedProof> decoded = DecodeShardedProof(artifact);
  if (!decoded.ok()) {
    return VerifyResult::Rejected(VerifyStage::kShardStitch, decoded.status());
  }
  const size_t k = compiled.num_shards();
  if (decoded->shard_proofs.size() != k) {
    return VerifyResult::Rejected(
        VerifyStage::kShardStitch,
        InvalidArgumentError("artifact carries " + std::to_string(decoded->shard_proofs.size()) +
                             " shards, model compiled into " + std::to_string(k)));
  }

  // The composite statement is [input ‖ output]; the artifact's outer
  // boundaries must be exactly those values, else the shard chain proves a
  // different statement than the one being claimed.
  const std::vector<Fr>& b_in = decoded->boundaries.front();
  const std::vector<Fr>& b_out = decoded->boundaries.back();
  if (instance.size() != b_in.size() + b_out.size()) {
    return VerifyResult::Rejected(
        VerifyStage::kInstance,
        InvalidArgumentError("composite instance has " + std::to_string(instance.size()) +
                             " values, artifact boundaries need " +
                             std::to_string(b_in.size() + b_out.size())));
  }
  for (size_t j = 0; j < instance.size(); ++j) {
    const Fr& want = j < b_in.size() ? b_in[j] : b_out[j - b_in.size()];
    if (!(instance[j] == want)) {
      return VerifyResult::Rejected(
          VerifyStage::kShardStitch,
          VerifyFailedError("artifact " +
                            std::string(j < b_in.size() ? "input" : "output") +
                            " boundary disagrees with the public statement at element " +
                            std::to_string(j)));
    }
  }

  // Per-shard verification against the stitched instances. KZG shards defer
  // their final pairing checks into one accumulator; IPA verifies inline.
  KzgAccumulator accumulator;
  std::shared_ptr<const KzgSetup> setup;
  for (size_t i = 0; i < k; ++i) {
    const CompiledModel& shard = *compiled.shards[i];
    std::vector<Fr> stitched = decoded->boundaries[i];
    stitched.insert(stitched.end(), decoded->boundaries[i + 1].begin(),
                    decoded->boundaries[i + 1].end());
    VerifyResult result;
    if (const auto* kzg = dynamic_cast<const KzgPcs*>(shard.pcs.get())) {
      setup = kzg->shared_setup();
      accumulator.SetTag(i);
      KzgPcs deferred(setup, &accumulator);
      result = VerifyDetailed(shard.pk.vk, deferred, stitched, decoded->shard_proofs[i]);
    } else {
      result = VerifyDetailed(shard.pk.vk, *shard.pcs, stitched, decoded->shard_proofs[i]);
    }
    if (!result.ok()) {
      return VerifyResult::Rejected(result.stage, ShardStatus(i, k, result.status));
    }
  }
  if (accumulator.size() > 0) {
    const Status status = accumulator.Check(*setup);
    if (!status.ok()) {
      return VerifyResult::Rejected(VerifyStage::kShardAggregate, status);
    }
  }
  return VerifyResult::Accepted();
}

obs::Json ShardedReportJson(const CompiledShardedModel& compiled, const ShardedProof& proof,
                            double verify_seconds) {
  obs::Json doc = obs::Json::Object();
  doc.Set("schema", kShardedProofSchema);
  doc.Set("model", compiled.model.name);
  doc.Set("backend", compiled.backend == PcsKind::kKzg ? "kzg" : "ipa");
  doc.Set("num_shards", static_cast<uint64_t>(compiled.num_shards()));
  doc.Set("compile_seconds", compiled.compile_seconds);
  doc.Set("witness_seconds", proof.witness_seconds);
  doc.Set("prove_wall_seconds", proof.prove_seconds);
  double sum = 0, max = 0;
  for (double s : proof.shard_prove_seconds) {
    sum += s;
    max = std::max(max, s);
  }
  doc.Set("prove_cpu_seconds", sum);
  doc.Set("max_shard_prove_seconds", max);
  doc.Set("verify_seconds", verify_seconds);
  doc.Set("proof_bytes", static_cast<uint64_t>(proof.ProofBytes()));
  obs::Json boundaries = obs::Json::Array();
  for (const std::vector<Fr>& b : proof.boundaries) {
    boundaries.Append(static_cast<uint64_t>(b.size()));
  }
  doc.Set("boundary_elements", std::move(boundaries));
  obs::Json shards = obs::Json::Array();
  for (size_t i = 0; i < compiled.num_shards(); ++i) {
    const CompiledModel& shard = *compiled.shards[i];
    obs::Json s = obs::Json::Object();
    s.Set("name", shard.model.name);
    s.Set("k", static_cast<uint64_t>(shard.layout.k));
    s.Set("num_columns", static_cast<uint64_t>(shard.layout.num_columns));
    s.Set("rows_used", static_cast<uint64_t>(shard.layout.rows_used));
    if (i < compiled.partition.shards.size()) {
      s.Set("flops", static_cast<uint64_t>(compiled.partition.shards[i].flops));
    }
    if (i < proof.shard_prove_seconds.size()) {
      s.Set("prove_seconds", proof.shard_prove_seconds[i]);
    }
    if (i < proof.shard_proofs.size()) {
      s.Set("proof_bytes", static_cast<uint64_t>(proof.shard_proofs[i].size()));
    }
    shards.Append(std::move(s));
  }
  doc.Set("shards", std::move(shards));
  return doc;
}

}  // namespace zkml
