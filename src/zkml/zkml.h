// Public API: compile an ML model to an optimized Plonkish circuit, produce
// ZK-SNARK proofs of its execution, and verify them. Mirrors the paper's
// two-stage user flow (§8): optimization (keys are model-specific) then
// proving (per input).
#ifndef SRC_ZKML_ZKML_H_
#define SRC_ZKML_ZKML_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/cancel.h"
#include "src/base/status.h"
#include "src/model/graph.h"
#include "src/obs/run_report.h"
#include "src/plonk/soundness.h"
#include "src/optimizer/optimizer.h"
#include "src/pcs/ipa.h"
#include "src/pcs/kzg.h"
#include "src/plonk/keygen.h"
#include "src/plonk/prover.h"
#include "src/plonk/verifier.h"

namespace zkml {

struct ZkmlOptions {
  PcsKind backend = PcsKind::kKzg;
  OptimizerOptions optimizer;  // backend field is overwritten by `backend`
  uint64_t setup_seed = 42;
};

// A model compiled to a concrete circuit layout with generated keys.
struct CompiledModel {
  Model model;
  PhysicalLayout layout;
  CostEstimate predicted_cost;
  std::shared_ptr<Pcs> pcs;
  ProvingKey pk;  // pk.vk is the verifying key
  double optimizer_seconds = 0;
  double keygen_seconds = 0;
};

// Runs the optimizer, builds the circuit, and generates keys.
CompiledModel CompileModel(const Model& model, const ZkmlOptions& options = {});
// Skips the optimizer and uses an explicit layout (ablation experiments).
CompiledModel CompileModelWithLayout(const Model& model, const PhysicalLayout& layout,
                                     const ZkmlOptions& options = {});

struct ZkmlProof {
  std::vector<uint8_t> bytes;
  // Public statement: the instance column (input values then output values).
  std::vector<Fr> instance;
  Tensor<int64_t> output_q;
  double witness_seconds = 0;
  double prove_seconds = 0;
  // Per-stage wall time and FFT/MSM op counts for the CreateProof call.
  ProverMetrics prover_metrics;
};

// Produces a proof that `compiled.model` maps input_q to the returned output.
ZkmlProof Prove(const CompiledModel& compiled, const Tensor<int64_t>& input_q);

// Cancellable variant for long-lived callers (the proving daemon's deadline
// enforcement, the CLI's SIGINT handling). `cancel` may be null; when it
// fires the call returns kCancelled / kDeadlineExceeded at the next
// checkpoint (before witness generation and between prover rounds) instead
// of running the proof to completion.
StatusOr<ZkmlProof> ProveCancellable(const CompiledModel& compiled,
                                     const Tensor<int64_t>& input_q,
                                     const CancelToken* cancel);

// Verifies a proof against its public statement, attributing any rejection to
// the stage that failed (see VerifyResult). Validates the instance length
// against the verifying key before entering the transcript: a wrong-sized
// instance vector is rejected up front rather than silently binding to a
// different statement.
VerifyResult VerifyDetailed(const VerifyingKey& vk, const Pcs& pcs,
                            const std::vector<Fr>& instance,
                            const std::vector<uint8_t>& proof_bytes);

// Thin boolean wrappers over VerifyDetailed.
bool Verify(const CompiledModel& compiled, const ZkmlProof& proof);
// Verifier-side entry point needing only the verifying key.
bool Verify(const VerifyingKey& vk, const Pcs& pcs, const std::vector<Fr>& instance,
            const std::vector<uint8_t>& proof_bytes);

// Constructs the PCS backend used by CompileModel (exposed for benchmarks).
std::shared_ptr<Pcs> MakePcsBackend(PcsKind kind, size_t max_len, uint64_t seed);

// --- Soundness audit (the `zkml_cli audit` entry point). ---

struct SoundnessAuditOptions {
  uint64_t seed = 1;
  int mutations_per_cell = 4;
  // Also run the end-to-end forgery harness: prove honestly under both PCS
  // backends, then tamper the claimed output in the public statement and
  // require both verifiers to reject. Dominated by two keygens + four proof
  // verifications, so it is skippable for quick circuit-only audits.
  bool run_forgery = true;
  // Optional cooperative interruption (CLI SIGINT): the audit checks the
  // token between engines (compile, coverage, fuzz, each forgery backend)
  // and returns early with `interrupted` set instead of finishing.
  const CancelToken* cancel = nullptr;
};

struct SoundnessAudit {
  // True when the audit was cut short by its CancelToken; only the engines
  // that completed before the interrupt are populated, and Passed() returns
  // false (a partial audit is not a clean bill).
  bool interrupted = false;
  // The honest witness satisfies the circuit (precondition for the fuzzer;
  // reported so a completeness bug cannot masquerade as perfect soundness).
  bool witness_satisfied = false;
  CoverageReport coverage;
  MutationReport mutation;

  bool forgery_ran = false;
  bool honest_kzg_accepted = false;
  bool honest_ipa_accepted = false;
  bool forged_kzg_rejected = false;
  bool forged_ipa_rejected = false;

  // Everything held: witness satisfied, no dead gates/lookups, no surviving
  // mutants, and (when run) honest proofs accepted and forgeries rejected
  // under both backends.
  bool Passed() const;
  // The full "zkml.soundness/v1" document.
  obs::Json ToJson() const;
};

// Compiles the model, generates the witness for `input_q`, and runs all three
// soundness engines against it (coverage, mutation fuzzing, and — unless
// disabled — the output-forgery harness).
SoundnessAudit RunSoundnessAudit(const Model& model, const Tensor<int64_t>& input_q,
                                 const SoundnessAuditOptions& options = {});

// Assembles the machine-readable run report (schema "zkml.run_report/v1")
// from a compile→prove(→verify) run. `verify_seconds` is 0 when the proof was
// not verified in-process.
obs::RunReport BuildRunReport(const CompiledModel& compiled, const ZkmlProof& proof,
                              double verify_seconds = 0.0,
                              const std::string& model_name = "");

}  // namespace zkml

#endif  // SRC_ZKML_ZKML_H_
