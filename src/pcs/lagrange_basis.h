// Per-backend cache of Lagrange-basis SRS tables, keyed by domain size. The
// transform (a G1 inverse FFT of the monomial bases — see
// LagrangeBasesFromMonomial) is setup-class work: it runs once per
// (setup, size) pair, at keygen in practice, and every prover round that
// commits from evaluation form afterwards is a plain MSM against the cached
// table.
#ifndef SRC_PCS_LAGRANGE_BASIS_H_
#define SRC_PCS_LAGRANGE_BASIS_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <vector>

#include "src/ec/g1.h"

namespace zkml {

class LagrangeBasisCache {
 public:
  // Lagrange bases for the size-n prefix of `monomial_bases`. n must be a
  // power of two no larger than monomial_bases.size(). The returned reference
  // stays valid for the cache's lifetime.
  const std::vector<G1Affine>& Get(const std::vector<G1Affine>& monomial_bases, size_t n) const;

 private:
  mutable std::mutex mu_;
  mutable std::map<size_t, std::vector<G1Affine>> by_size_;
};

}  // namespace zkml

#endif  // SRC_PCS_LAGRANGE_BASIS_H_
