#include "src/pcs/ipa.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/plonk/proof_io.h"

namespace zkml {
namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

IpaSetup IpaSetup::Create(size_t max_len, uint64_t seed) {
  const size_t n = NextPow2(max_len);
  IpaSetup setup;
  std::vector<G1Affine> pts = DeriveGenerators(seed, n + 1);
  setup.u = pts.back();
  pts.pop_back();
  setup.g = std::move(pts);
  return setup;
}

PcsCommitment IpaPcs::Commit(const std::vector<Fr>& coeffs) const {
  ZKML_CHECK_MSG(coeffs.size() <= setup_->g.size(), "polynomial exceeds IPA setup");
  static obs::Counter& commits = obs::MetricsRegistry::Global().counter("pcs.ipa.commits");
  commits.Increment();
  return PcsCommitment{Msm(setup_->g.data(), coeffs.data(), coeffs.size()).ToAffine()};
}

PcsCommitment IpaPcs::CommitLagrange(const std::vector<Fr>& evals) const {
  static obs::Counter& commits =
      obs::MetricsRegistry::Global().counter("pcs.ipa.lagrange_commits");
  commits.Increment();
  // The Pedersen bases are structureless, but the commitment is linear in
  // them, so the same IFFT-transpose transform applies (see pcs.h).
  const std::vector<G1Affine>& bases = lagrange_.Get(setup_->g, evals.size());
  return PcsCommitment{Msm(bases.data(), evals.data(), evals.size()).ToAffine()};
}

void IpaPcs::OpenBatch(const std::vector<const std::vector<Fr>*>& polys, const Fr& point,
                       Transcript* transcript, std::vector<uint8_t>* proof_out) const {
  obs::Span span("ipa-open-batch");
  static obs::Counter& opens = obs::MetricsRegistry::Global().counter("pcs.ipa.open_batches");
  opens.Increment();
  ZKML_CHECK(!polys.empty());
  const Fr v = transcript->ChallengeFr("ipa-batch-v");
  size_t max_size = 1;
  for (const auto* p : polys) {
    max_size = std::max(max_size, p->size());
  }
  const size_t n = NextPow2(max_size);
  ZKML_CHECK(n <= setup_->g.size());

  std::vector<Fr> a(n, Fr::Zero());
  Fr vi = Fr::One();
  for (const auto* p : polys) {
    for (size_t i = 0; i < p->size(); ++i) {
      a[i] += (*p)[i] * vi;
    }
    vi *= v;
  }
  // b = (1, z, z^2, ...): the evaluation claim is <a, b> = y.
  std::vector<Fr> b(n);
  b[0] = Fr::One();
  for (size_t i = 1; i < n; ++i) {
    b[i] = b[i - 1] * point;
  }

  ProofAppendU32(proof_out, static_cast<uint32_t>(n));
  std::vector<G1Affine> g(setup_->g.begin(), setup_->g.begin() + n);
  const G1 u = G1::FromAffine(setup_->u);

  size_t len = n;
  while (len > 1) {
    const size_t half = len / 2;
    // The lo/hi halves are just index ranges of a and g; the cross terms and
    // the L/R MSMs read them before the fold overwrites anything.
    Fr cross_l = Fr::Zero();
    Fr cross_r = Fr::Zero();
    for (size_t i = 0; i < half; ++i) {
      cross_l += a[i] * b[half + i];
      cross_r += a[half + i] * b[i];
    }
    const G1Affine l = (Msm(g.data() + half, a.data(), half) + u.ScalarMul(cross_l)).ToAffine();
    const G1Affine r = (Msm(g.data(), a.data() + half, half) + u.ScalarMul(cross_r)).ToAffine();
    transcript->AppendPoint("ipa-l", l);
    transcript->AppendPoint("ipa-r", r);
    ProofAppendPoint(proof_out, l);
    ProofAppendPoint(proof_out, r);

    const Fr ch = transcript->ChallengeFr("ipa-u");
    const Fr ch_inv = ch.Inverse();

    // Fold in place: a' = a_lo*ch + a_hi*ch_inv; b' = b_lo*ch_inv + b_hi*ch;
    // g' = g_lo*ch_inv + g_hi*ch. Slot i is read before it is written and the
    // hi half is only read, so no copies are needed.
    for (size_t i = 0; i < half; ++i) {
      a[i] = a[i] * ch + a[half + i] * ch_inv;
      b[i] = b[i] * ch_inv + b[half + i] * ch;
      g[i] = (G1::FromAffine(g[i]).ScalarMul(ch_inv) + G1::FromAffine(g[half + i]).ScalarMul(ch))
                 .ToAffine();
    }
    len = half;
  }
  transcript->AppendFr("ipa-a", a[0]);
  ProofAppendFr(proof_out, a[0]);
}

Status IpaPcs::VerifyBatch(const std::vector<PcsCommitment>& commitments,
                           const std::vector<Fr>& evals, const Fr& point, Transcript* transcript,
                           const std::vector<uint8_t>& proof, size_t* offset) const {
  obs::Span span("ipa-verify-batch");
  static obs::Counter& verifies = obs::MetricsRegistry::Global().counter("pcs.ipa.verify_batches");
  verifies.Increment();
  if (commitments.size() != evals.size()) {
    return InvalidArgumentError("ipa: " + std::to_string(commitments.size()) +
                                " commitments but " + std::to_string(evals.size()) +
                                " claimed evaluations");
  }
  if (commitments.empty()) {
    return InvalidArgumentError("ipa: empty opening batch");
  }
  const Fr v = transcript->ChallengeFr("ipa-batch-v");
  uint32_t n32 = 0;
  ZKML_RETURN_IF_ERROR(ProofReadU32(proof, offset, &n32, "ipa vector length"));
  const size_t n = n32;
  if (n == 0 || (n & (n - 1)) != 0) {
    return MalformedProofError("ipa: vector length " + std::to_string(n) +
                               " is not a nonzero power of two");
  }
  if (n > setup_->g.size()) {
    return MalformedProofError("ipa: vector length " + std::to_string(n) +
                               " exceeds setup size " + std::to_string(setup_->g.size()));
  }
  int rounds = 0;
  for (size_t t = n; t > 1; t >>= 1) {
    ++rounds;
  }

  // Fold the batch claim: P = sum v^i C_i + y*·U with y* = sum v^i y_i.
  G1 p_acc;
  Fr y_star = Fr::Zero();
  Fr vi = Fr::One();
  for (size_t i = 0; i < commitments.size(); ++i) {
    p_acc += G1::FromAffine(commitments[i].point).ScalarMul(vi);
    y_star += evals[i] * vi;
    vi *= v;
  }
  const G1 u = G1::FromAffine(setup_->u);
  p_acc += u.ScalarMul(y_star);

  std::vector<Fr> challenges(rounds);
  for (int j = 0; j < rounds; ++j) {
    G1Affine l, r;
    const std::string round = "ipa round " + std::to_string(j);
    ZKML_RETURN_IF_ERROR(ProofReadPoint(proof, offset, &l, (round + " L point").c_str()));
    ZKML_RETURN_IF_ERROR(ProofReadPoint(proof, offset, &r, (round + " R point").c_str()));
    transcript->AppendPoint("ipa-l", l);
    transcript->AppendPoint("ipa-r", r);
    const Fr ch = transcript->ChallengeFr("ipa-u");
    challenges[j] = ch;
    const Fr ch_inv = ch.Inverse();
    p_acc += G1::FromAffine(l).ScalarMul(ch.Square());
    p_acc += G1::FromAffine(r).ScalarMul(ch_inv.Square());
  }
  Fr a_final;
  ZKML_RETURN_IF_ERROR(ProofReadFr(proof, offset, &a_final, "ipa final scalar"));
  transcript->AppendFr("ipa-a", a_final);

  // s_i = prod over rounds of ch^{+1} if the round's bit of i is set else
  // ch^{-1}; G_final = <s, G>, b_final = <s^{-1}, b>.
  std::vector<Fr> s(n, Fr::One());
  for (int j = 0; j < rounds; ++j) {
    const Fr ch = challenges[j];
    const Fr ch_inv = ch.Inverse();
    // Round j folds blocks of size n >> j; indices in the upper half of a
    // block take the ch factor, the lower half ch^{-1}.
    const size_t block = n >> j;
    for (size_t i = 0; i < n; ++i) {
      const bool hi = (i % block) >= block / 2;
      s[i] *= hi ? ch : ch_inv;
    }
  }
  const G1 g_final = Msm(setup_->g.data(), s.data(), n);

  // b folds with the same orientation as G (see OpenBatch), so b_final uses
  // the same s vector: b_final = sum_i s_i * z^i.
  Fr b_final = Fr::Zero();
  Fr zi = Fr::One();
  for (size_t i = 0; i < n; ++i) {
    b_final += s[i] * zi;
    zi *= point;
  }

  const G1 lhs = g_final.ScalarMul(a_final) + u.ScalarMul(a_final * b_final);
  if (!(p_acc == lhs)) {
    return VerifyFailedError("ipa: folded opening equation does not hold after " +
                             std::to_string(rounds) + " rounds (batch of " +
                             std::to_string(commitments.size()) + " commitments)");
  }
  return Status::Ok();
}

}  // namespace zkml
