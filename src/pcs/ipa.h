// Inner-product-argument polynomial commitments (Bulletproofs-style, as used
// by halo2's transparent backend). No trusted setup; commitments are Pedersen
// vector commitments over deterministically derived bases. Verification
// performs O(n) group operations — the reason the paper's Table 7 shows
// slower IPA verification than KZG.
//
// Zero-knowledge blinding terms are omitted (DESIGN.md §2): the argument is
// complete and binding; hiding is not exercised by the paper's evaluation.
#ifndef SRC_PCS_IPA_H_
#define SRC_PCS_IPA_H_

#include <memory>
#include <vector>

#include "src/pcs/lagrange_basis.h"
#include "src/pcs/pcs.h"

namespace zkml {

struct IpaSetup {
  std::vector<G1Affine> g;  // Pedersen basis, length = max_len (power of two)
  G1Affine u;               // auxiliary generator binding the claimed evaluation

  static IpaSetup Create(size_t max_len, uint64_t seed);
};

class IpaPcs : public Pcs {
 public:
  explicit IpaPcs(std::shared_ptr<const IpaSetup> setup) : setup_(std::move(setup)) {}

  PcsKind kind() const override { return PcsKind::kIpa; }
  size_t max_len() const override { return setup_->g.size(); }

  PcsCommitment Commit(const std::vector<Fr>& coeffs) const override;
  PcsCommitment CommitLagrange(const std::vector<Fr>& evals) const override;
  void OpenBatch(const std::vector<const std::vector<Fr>*>& polys, const Fr& point,
                 Transcript* transcript, std::vector<uint8_t>* proof_out) const override;
  Status VerifyBatch(const std::vector<PcsCommitment>& commitments, const std::vector<Fr>& evals,
                     const Fr& point, Transcript* transcript, const std::vector<uint8_t>& proof,
                     size_t* offset) const override;

 private:
  std::shared_ptr<const IpaSetup> setup_;
  LagrangeBasisCache lagrange_;
};

}  // namespace zkml

#endif  // SRC_PCS_IPA_H_
