#include "src/pcs/lagrange_basis.h"

#include <utility>

#include "src/base/check.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace zkml {

const std::vector<G1Affine>& LagrangeBasisCache::Get(
    const std::vector<G1Affine>& monomial_bases, size_t n) const {
  ZKML_CHECK_MSG(n != 0 && (n & (n - 1)) == 0,
                 "Lagrange commitment size must be a power of two");
  ZKML_CHECK_MSG(n <= monomial_bases.size(), "Lagrange commitment size exceeds setup");
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_size_.find(n);
    if (it != by_size_.end()) {
      return it->second;
    }
  }
  // Build WITHOUT holding the mutex: the G1 FFT runs ParallelFor, and a
  // thread helping the pool can steal a task that re-enters this function —
  // holding the lock there would self-deadlock (same discipline as the
  // domain's coset tables). A racing builder's copy is discarded by emplace;
  // the values are identical and map node references stay stable.
  static obs::Counter& builds =
      obs::MetricsRegistry::Global().counter("pcs.lagrange_basis_builds");
  builds.Increment();
  obs::Span span("lagrange-basis-build");
  std::vector<G1Affine> prefix(monomial_bases.begin(), monomial_bases.begin() + n);
  std::vector<G1Affine> lagrange = LagrangeBasesFromMonomial(prefix);
  std::lock_guard<std::mutex> lock(mu_);
  return by_size_.emplace(n, std::move(lagrange)).first->second;
}

}  // namespace zkml
