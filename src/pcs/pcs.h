// Polynomial commitment scheme interface shared by the KZG and IPA backends.
// The PLONK prover/verifier is written against this interface so a circuit
// can be proven under either commitment scheme, as in the paper's Tables 6/7.
#ifndef SRC_PCS_PCS_H_
#define SRC_PCS_PCS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/status.h"
#include "src/ec/g1.h"
#include "src/ff/fields.h"
#include "src/transcript/transcript.h"

namespace zkml {

enum class PcsKind { kKzg, kIpa };

struct PcsCommitment {
  G1Affine point;

  bool operator==(const PcsCommitment& o) const { return point == o.point; }
};

// A batch of polynomials opened at one point. `polys` are coefficient vectors.
class Pcs {
 public:
  virtual ~Pcs() = default;

  virtual PcsKind kind() const = 0;
  // Maximum number of coefficients a committed polynomial may have.
  virtual size_t max_len() const = 0;

  virtual PcsCommitment Commit(const std::vector<Fr>& coeffs) const = 0;

  // Commits to the polynomial whose evaluations over the radix-2 domain of
  // size evals.size() (a power of two, <= max_len()) are `evals`, without an
  // iFFT: the MSM runs against a Lagrange-basis SRS derived once per size by
  // a G1 inverse FFT of the monomial bases and cached. The returned point is
  // bit-identical to Commit(IfftToCoeffs(evals)) — both are the same group
  // element and affine serialization is canonical.
  virtual PcsCommitment CommitLagrange(const std::vector<Fr>& evals) const = 0;

  // Proves the evaluations of `polys` at `point`. The caller must already
  // have absorbed the claimed evaluations into `transcript`; the RLC batching
  // challenge is drawn from it here. Proof bytes are appended to `proof_out`.
  virtual void OpenBatch(const std::vector<const std::vector<Fr>*>& polys, const Fr& point,
                         Transcript* transcript, std::vector<uint8_t>* proof_out) const = 0;

  // Verifier side. Consumes bytes from proof[*offset...] and advances
  // *offset. Proof bytes are adversarial: implementations must never abort on
  // them. Returns kMalformedProof for structurally bad bytes (truncation,
  // invalid encodings, unsupported sizes), kVerifyFailed when the opening
  // equation does not hold, kInvalidArgument on caller contract violations.
  virtual Status VerifyBatch(const std::vector<PcsCommitment>& commitments,
                             const std::vector<Fr>& evals, const Fr& point, Transcript* transcript,
                             const std::vector<uint8_t>& proof, size_t* offset) const = 0;
};

}  // namespace zkml

#endif  // SRC_PCS_PCS_H_
