// KZG polynomial commitments over BN254 G1.
//
// SUBSTITUTION (see DESIGN.md §2): the original verifier checks the opening
// equation e(C - y·G, H) = e(W, (tau - z)·H) with a pairing. Implementing the
// BN254 pairing (Fp12 tower, Miller loop) from scratch offline is out of
// scope, so our verifier — which in this repo also generated the local,
// insecure trusted setup — checks the *same relation in the exponent* using
// the trapdoor: C - y·G == (tau - z)·W. Prover work, proof bytes, and
// verification asymptotics are identical to the pairing-based check.
#ifndef SRC_PCS_KZG_H_
#define SRC_PCS_KZG_H_

#include <memory>
#include <vector>

#include "src/pcs/lagrange_basis.h"
#include "src/pcs/pcs.h"

namespace zkml {

struct KzgSetup {
  std::vector<G1Affine> powers;  // tau^i * G for i < max_len
  Fr tau;                        // trapdoor, used only by the simulated pairing check

  // Local (insecure, test/benchmark-only) setup. The real system uses the
  // Perpetual Powers of Tau ceremony output. The trapdoor is drawn from the
  // seed before the powers, so setups sharing a seed share tau regardless of
  // max_len — per-shard setups of different sizes aggregate soundly.
  static KzgSetup Create(size_t max_len, uint64_t seed);
};

// One opening claim captured instead of checked: lhs == (tau - z)·W, the
// exponent form of the pairing equation e(C* - y*·G, H) = e(W, (tau - z)·H).
struct KzgDeferredOpening {
  G1 lhs;      // C* - y*·G for the batch
  G1Affine w;  // witness commitment
  Fr point;    // opening point z
  size_t tag;  // which proof this claim came from (shard/batch index)
};

// Collects deferred openings across many proofs (one per shard in sharded
// verification, one per proof in cross-proof batch verification) and
// discharges them with a single random-linear-combination check — the analog
// of one batched pairing instead of k. Not thread-safe; accumulate from one
// thread.
class KzgAccumulator {
 public:
  // Tag stamped onto subsequently Add()ed claims; callers verifying several
  // proofs into one accumulator set this to the proof's index before each
  // proof so a rejection can name the culprit.
  void SetTag(size_t tag) { tag_ = tag; }

  void Add(KzgDeferredOpening opening) {
    opening.tag = tag_;
    entries_.push_back(std::move(opening));
  }
  size_t size() const { return entries_.size(); }

  // Draws an RLC challenge r from a transcript over every accumulated claim
  // and verifies sum_j r^j·lhs_j == sum_j r^j·(tau - z_j)·W_j with a single
  // pairing check. A cheat in any single claim survives only with probability
  // |entries|/|Fr|. On failure, each claim is re-checked individually
  // (diagnostic only — these extra checks run on the rejection path) and the
  // tags of the failing proofs are reported in the error message and, when
  // `blamed_tags` is non-null, appended there.
  Status Check(const KzgSetup& setup, std::vector<size_t>* blamed_tags = nullptr) const;

 private:
  std::vector<KzgDeferredOpening> entries_;
  size_t tag_ = 0;
};

class KzgPcs : public Pcs {
 public:
  explicit KzgPcs(std::shared_ptr<const KzgSetup> setup) : setup_(std::move(setup)) {}

  // Deferred-verification mode: VerifyBatch records its final opening claim
  // into `defer` (not owned) and reports success; the caller must discharge
  // the accumulator with KzgAccumulator::Check. Proving is unaffected.
  KzgPcs(std::shared_ptr<const KzgSetup> setup, KzgAccumulator* defer)
      : setup_(std::move(setup)), defer_(defer) {}

  const KzgSetup& setup() const { return *setup_; }
  const std::shared_ptr<const KzgSetup>& shared_setup() const { return setup_; }

  PcsKind kind() const override { return PcsKind::kKzg; }
  size_t max_len() const override { return setup_->powers.size(); }

  PcsCommitment Commit(const std::vector<Fr>& coeffs) const override;
  PcsCommitment CommitLagrange(const std::vector<Fr>& evals) const override;
  void OpenBatch(const std::vector<const std::vector<Fr>*>& polys, const Fr& point,
                 Transcript* transcript, std::vector<uint8_t>* proof_out) const override;
  Status VerifyBatch(const std::vector<PcsCommitment>& commitments, const std::vector<Fr>& evals,
                     const Fr& point, Transcript* transcript, const std::vector<uint8_t>& proof,
                     size_t* offset) const override;

 private:
  std::shared_ptr<const KzgSetup> setup_;
  KzgAccumulator* defer_ = nullptr;
  LagrangeBasisCache lagrange_;
};

}  // namespace zkml

#endif  // SRC_PCS_KZG_H_
