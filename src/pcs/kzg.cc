#include "src/pcs/kzg.h"

#include "src/base/check.h"
#include "src/base/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/plonk/proof_io.h"
#include "src/poly/polynomial.h"

namespace zkml {

KzgSetup KzgSetup::Create(size_t max_len, uint64_t seed) {
  Rng rng(seed);
  KzgSetup setup;
  setup.tau = Fr::Random(rng);
  setup.powers.resize(max_len);
  // powers[i] = tau^i * G, scalar-multiplied in parallel. Setup cost is
  // excluded from benchmarks (the real system downloads ceremony output).
  std::vector<Fr> tau_pows(max_len);
  Fr tau_i = Fr::One();
  for (size_t i = 0; i < max_len; ++i) {
    tau_pows[i] = tau_i;
    tau_i *= setup.tau;
  }
  const G1 g = G1::Generator();
  ParallelFor(0, max_len, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      setup.powers[i] = g.ScalarMul(tau_pows[i]).ToAffine();
    }
  });
  return setup;
}

PcsCommitment KzgPcs::Commit(const std::vector<Fr>& coeffs) const {
  ZKML_CHECK_MSG(coeffs.size() <= setup_->powers.size(), "polynomial exceeds KZG setup");
  static obs::Counter& commits = obs::MetricsRegistry::Global().counter("pcs.kzg.commits");
  commits.Increment();
  return PcsCommitment{Msm(setup_->powers.data(), coeffs.data(), coeffs.size()).ToAffine()};
}

PcsCommitment KzgPcs::CommitLagrange(const std::vector<Fr>& evals) const {
  static obs::Counter& commits =
      obs::MetricsRegistry::Global().counter("pcs.kzg.lagrange_commits");
  commits.Increment();
  const std::vector<G1Affine>& bases = lagrange_.Get(setup_->powers, evals.size());
  return PcsCommitment{Msm(bases.data(), evals.data(), evals.size()).ToAffine()};
}

void KzgPcs::OpenBatch(const std::vector<const std::vector<Fr>*>& polys, const Fr& point,
                       Transcript* transcript, std::vector<uint8_t>* proof_out) const {
  obs::Span span("kzg-open-batch");
  static obs::Counter& opens = obs::MetricsRegistry::Global().counter("pcs.kzg.open_batches");
  opens.Increment();
  ZKML_CHECK(!polys.empty());
  const Fr v = transcript->ChallengeFr("kzg-batch-v");
  size_t max_size = 0;
  for (const auto* p : polys) {
    max_size = std::max(max_size, p->size());
  }
  std::vector<Fr> combined(max_size, Fr::Zero());
  Fr vi = Fr::One();
  for (const auto* p : polys) {
    for (size_t i = 0; i < p->size(); ++i) {
      combined[i] += (*p)[i] * vi;
    }
    vi *= v;
  }
  Fr y;
  Poly quotient = Poly(std::move(combined)).DivideByLinear(point, &y);
  const PcsCommitment w = Commit(quotient.coeffs());
  transcript->AppendPoint("kzg-w", w.point);
  const auto bytes = w.point.Serialize();
  proof_out->insert(proof_out->end(), bytes.begin(), bytes.end());
}

Status KzgPcs::VerifyBatch(const std::vector<PcsCommitment>& commitments,
                           const std::vector<Fr>& evals, const Fr& point, Transcript* transcript,
                           const std::vector<uint8_t>& proof, size_t* offset) const {
  obs::Span span("kzg-verify-batch");
  static obs::Counter& verifies = obs::MetricsRegistry::Global().counter("pcs.kzg.verify_batches");
  verifies.Increment();
  if (commitments.size() != evals.size()) {
    return InvalidArgumentError("kzg: " + std::to_string(commitments.size()) +
                                " commitments but " + std::to_string(evals.size()) +
                                " claimed evaluations");
  }
  if (commitments.empty()) {
    return InvalidArgumentError("kzg: empty opening batch");
  }
  if (setup_->powers.empty()) {
    return OutOfRangeError("kzg: empty setup");
  }
  const Fr v = transcript->ChallengeFr("kzg-batch-v");
  G1Affine w;
  ZKML_RETURN_IF_ERROR(ProofReadPoint(proof, offset, &w, "kzg witness point"));
  transcript->AppendPoint("kzg-w", w);

  // C* = sum v^i C_i, y* = sum v^i y_i.
  G1 c_star;
  Fr y_star = Fr::Zero();
  Fr vi = Fr::One();
  for (size_t i = 0; i < commitments.size(); ++i) {
    c_star += G1::FromAffine(commitments[i].point).ScalarMul(vi);
    y_star += evals[i] * vi;
    vi *= v;
  }
  // Pairing check simulated in the exponent (see header comment):
  //   C* - y*·G == (tau - z)·W.
  const G1 lhs = c_star - G1::Generator().ScalarMul(y_star);
  if (defer_ != nullptr) {
    // Deferred verification: record the claim; KzgAccumulator::Check folds
    // every proof's claim into one RLC'd pairing check.
    defer_->Add(KzgDeferredOpening{lhs, w, point, 0});
    return Status::Ok();
  }
  static obs::Counter& pairings =
      obs::MetricsRegistry::Global().counter("pcs.kzg.pairing_checks");
  pairings.Increment();
  const G1 rhs = G1::FromAffine(w).ScalarMul(setup_->tau - point);
  if (!(lhs == rhs)) {
    return VerifyFailedError("kzg: opening equation C* - y*G != (tau - z)W for batch of " +
                             std::to_string(commitments.size()) + " commitments");
  }
  return Status::Ok();
}

Status KzgAccumulator::Check(const KzgSetup& setup, std::vector<size_t>* blamed_tags) const {
  obs::Span span("kzg-aggregate-check");
  static obs::Counter& checks =
      obs::MetricsRegistry::Global().counter("pcs.kzg.aggregate_checks");
  static obs::Counter& pairings =
      obs::MetricsRegistry::Global().counter("pcs.kzg.pairing_checks");
  checks.Increment();
  if (entries_.empty()) {
    return InvalidArgumentError("kzg aggregate: no deferred openings to check");
  }
  // The RLC challenge is bound to every claim being combined, so an attacker
  // cannot craft two bad claims that cancel.
  Transcript transcript("zkml-kzg-aggregate");
  for (const KzgDeferredOpening& e : entries_) {
    transcript.AppendPoint("agg-lhs", e.lhs.ToAffine());
    transcript.AppendPoint("agg-w", e.w);
    transcript.AppendFr("agg-z", e.point);
  }
  const Fr r = transcript.ChallengeFr("kzg-aggregate-r");
  // sum r^j lhs_j == sum r^j (tau - z_j) W_j — the exponent form of the single
  // batched pairing e(sum r^j (C_j - y_j·G + z_j·W_j), H) = e(sum r^j W_j, tau·H).
  G1 lhs_acc, rhs_acc;
  Fr rj = Fr::One();
  for (const KzgDeferredOpening& e : entries_) {
    lhs_acc += e.lhs.ScalarMul(rj);
    rhs_acc += G1::FromAffine(e.w).ScalarMul(rj * (setup.tau - e.point));
    rj *= r;
  }
  pairings.Increment();
  if (lhs_acc == rhs_acc) {
    return Status::Ok();
  }
  // Rejection path: re-check each claim on its own to name the proofs whose
  // openings are bad. These per-claim checks only run after the single
  // aggregate pairing check has already failed.
  std::vector<size_t> bad;
  for (const KzgDeferredOpening& e : entries_) {
    pairings.Increment();
    if (!(e.lhs == G1::FromAffine(e.w).ScalarMul(setup.tau - e.point)) &&
        (bad.empty() || bad.back() != e.tag)) {
      bad.push_back(e.tag);
    }
  }
  std::string who;
  for (const size_t tag : bad) {
    who += (who.empty() ? "" : ",") + std::to_string(tag);
  }
  if (blamed_tags != nullptr) {
    blamed_tags->insert(blamed_tags->end(), bad.begin(), bad.end());
  }
  if (bad.empty()) {
    // Every claim passes individually but the combination fails: impossible
    // for honestly accumulated claims, so report it as corruption.
    return VerifyFailedError("kzg aggregate: combined pairing check failed across " +
                             std::to_string(entries_.size()) +
                             " deferred openings (no individual claim blamed)");
  }
  return VerifyFailedError("kzg aggregate: combined pairing check failed across " +
                           std::to_string(entries_.size()) +
                           " deferred openings; blamed proof(s): " + who);
}

}  // namespace zkml
