#include "src/poly/polynomial.h"

#include <algorithm>

namespace zkml {

bool Poly::IsZero() const {
  for (const Fr& c : coeffs_) {
    if (!c.IsZero()) {
      return false;
    }
  }
  return true;
}

int Poly::Degree() const {
  for (size_t i = coeffs_.size(); i-- > 0;) {
    if (!coeffs_[i].IsZero()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Fr Poly::Evaluate(const Fr& x) const {
  Fr acc = Fr::Zero();
  for (size_t i = coeffs_.size(); i-- > 0;) {
    acc = acc * x + coeffs_[i];
  }
  return acc;
}

Poly Poly::operator+(const Poly& o) const {
  std::vector<Fr> out(std::max(coeffs_.size(), o.coeffs_.size()), Fr::Zero());
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    out[i] += coeffs_[i];
  }
  for (size_t i = 0; i < o.coeffs_.size(); ++i) {
    out[i] += o.coeffs_[i];
  }
  return Poly(std::move(out));
}

Poly Poly::operator-(const Poly& o) const {
  std::vector<Fr> out(std::max(coeffs_.size(), o.coeffs_.size()), Fr::Zero());
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    out[i] += coeffs_[i];
  }
  for (size_t i = 0; i < o.coeffs_.size(); ++i) {
    out[i] -= o.coeffs_[i];
  }
  return Poly(std::move(out));
}

Poly Poly::operator*(const Poly& o) const {
  if (coeffs_.empty() || o.coeffs_.empty()) {
    return Poly();
  }
  std::vector<Fr> out(coeffs_.size() + o.coeffs_.size() - 1, Fr::Zero());
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i].IsZero()) {
      continue;
    }
    for (size_t j = 0; j < o.coeffs_.size(); ++j) {
      out[i + j] += coeffs_[i] * o.coeffs_[j];
    }
  }
  return Poly(std::move(out));
}

Poly Poly::ScalarMul(const Fr& s) const {
  std::vector<Fr> out = coeffs_;
  for (Fr& c : out) {
    c *= s;
  }
  return Poly(std::move(out));
}

Poly Poly::DivideByLinear(const Fr& z, Fr* remainder) const {
  if (coeffs_.empty()) {
    if (remainder != nullptr) {
      *remainder = Fr::Zero();
    }
    return Poly();
  }
  std::vector<Fr> q(coeffs_.size() - 1, Fr::Zero());
  Fr carry = Fr::Zero();
  for (size_t i = coeffs_.size(); i-- > 0;) {
    Fr cur = coeffs_[i] + carry * z;
    if (i > 0) {
      q[i - 1] = cur;
    } else if (remainder != nullptr) {
      *remainder = cur;
    }
    carry = cur;
  }
  return Poly(std::move(q));
}

void Poly::Truncate() {
  while (!coeffs_.empty() && coeffs_.back().IsZero()) {
    coeffs_.pop_back();
  }
}

}  // namespace zkml
