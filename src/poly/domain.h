// Radix-2 evaluation domains over Fr and the FFT machinery the PLONK prover
// uses: value<->coefficient transforms on the 2^k-th roots of unity, coset
// evaluations on the extended domain used by the quotient argument, and
// Lagrange-basis helpers the verifier evaluates at the challenge point.
//
// Twiddle tables are computed once per domain (and once per extended coset
// domain, lazily) and reused by every transform; the prover runs hundreds of
// FFTs over the same handful of domains, and rebuilding the power table used
// to dominate small-FFT cost.
#ifndef SRC_POLY_DOMAIN_H_
#define SRC_POLY_DOMAIN_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <vector>

#include "src/ff/fields.h"
#include "src/poly/polynomial.h"

namespace zkml {

// In-place FFT on a power-of-two sized vector. `omega` must be a primitive
// n-th root of unity. Input and output are in natural order. Builds its own
// twiddle table; prefer the EvaluationDomain methods in repeated use.
void Fft(std::vector<Fr>* values, const Fr& omega);

class EvaluationDomain {
 public:
  // Domain of size 2^k.
  explicit EvaluationDomain(int k);

  int k() const { return k_; }
  size_t size() const { return n_; }
  const Fr& omega() const { return omega_; }
  const Fr& omega_inv() const { return omega_inv_; }

  // omega^i, for i in [0, n).
  const std::vector<Fr>& elements() const { return elements_; }
  Fr element(size_t i) const { return elements_[i % n_]; }

  // Coefficients -> evaluations over the domain (pads with zeros; input size
  // must be <= n).
  std::vector<Fr> FftFromCoeffs(const std::vector<Fr>& coeffs) const;
  // Evaluations -> coefficients.
  std::vector<Fr> IfftToCoeffs(const std::vector<Fr>& evals) const;

  // Evaluations of the polynomial (given by coefficients, size <= ext_n) over
  // the coset g * H_ext where H_ext is the domain of size ext_n = n << ext_k
  // and g is the Fr multiplicative generator. Used for quotient computation:
  // the vanishing polynomial of H never vanishes on this coset.
  std::vector<Fr> CosetFftFromCoeffs(const std::vector<Fr>& coeffs, int ext_k) const;
  // As above, but writes into *out (resized to n << ext_k; previous contents
  // discarded) so callers can reuse pooled buffers instead of allocating a
  // fresh multi-MB vector per column.
  void CosetFftFromCoeffsInto(const std::vector<Fr>& coeffs, int ext_k,
                              std::vector<Fr>* out) const;
  // Inverse: coset evaluations (size n << ext_k) -> coefficients.
  std::vector<Fr> CosetIfftToCoeffs(const std::vector<Fr>& evals, int ext_k) const;

  // Values of 1 / (g^n * (w_ext^n)^j - 1) for j in [0, n<<ext_k): the inverse
  // of the vanishing polynomial of H on the extended coset. The sequence has
  // period 2^ext_k.
  std::vector<Fr> VanishingInverseOnCoset(int ext_k) const;

  // x^n - 1.
  Fr EvaluateVanishing(const Fr& x) const;
  // l_i(x) = omega^i * (x^n - 1) / (n * (x - omega^i)). Callers must not pass
  // x inside the domain.
  Fr EvaluateLagrange(size_t i, const Fr& x) const;
  // Evaluates sum_i values[i] * l_i(x) without interpolating (O(n)).
  Fr EvaluateLagrangeCombination(const std::vector<Fr>& values, const Fr& x) const;

 private:
  // Tables for the extended coset domain of size n << ext_k, built on first
  // use and cached for the lifetime of the domain.
  struct CosetTables {
    std::vector<Fr> twiddles;      // w_ext^i, i < ext_n/2
    std::vector<Fr> inv_twiddles;  // w_ext^{-i}, i < ext_n/2
    std::vector<Fr> scale;         // g^i, i < ext_n
    std::vector<Fr> inv_scale;     // ext_n^{-1} * g^{-i}, i < ext_n
  };
  const CosetTables& GetCosetTables(int ext_k) const;

  int k_;
  size_t n_;
  Fr omega_;
  Fr omega_inv_;
  Fr n_inv_;
  std::vector<Fr> elements_;
  // twiddles_[i] = omega^i for i < n/2 (forward transforms);
  // inv_twiddles_[i] = omega^{-i} (inverse transforms).
  std::vector<Fr> twiddles_;
  std::vector<Fr> inv_twiddles_;
  mutable std::mutex coset_mu_;
  mutable std::map<int, CosetTables> coset_tables_;
};

}  // namespace zkml

#endif  // SRC_POLY_DOMAIN_H_
