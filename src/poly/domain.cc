#include "src/poly/domain.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/kernel_stats.h"
#include "src/base/thread_pool.h"
#include "src/ff/batch_mul.h"

namespace zkml {
namespace {

void BitReversePermute(Fr* values, size_t n) {
  size_t j = 0;
  for (size_t i = 1; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(values[i], values[j]);
    }
  }
}

// out[i] = scale * base^i for i in [0, n). Chunks are seeded with Pow, so the
// table builds in parallel; the values are identical to a serial running
// product because field arithmetic is exact.
std::vector<Fr> BuildPowers(const Fr& base, size_t n, const Fr& scale) {
  std::vector<Fr> out(n);
  ParallelFor(0, n, [&](size_t lo, size_t hi) {
    Fr cur = base.Pow(U256::FromU64(lo)) * scale;
    for (size_t i = lo; i < hi; ++i) {
      out[i] = cur;
      cur *= base;
    }
  });
  return out;
}

// In-place radix-2 DIT FFT. tw[i] = w^i for i < n/2 where w is a primitive
// n-th root of unity.
//
// Each stage has n/2 butterflies laid out as (n/len) blocks of len/2. The
// work is parallelized over the flattened butterfly index, so a chunk covers
// many whole blocks in the early stages and a j-range inside one wide block
// in the late stages — the same loop exposes both parallelism axes, and
// stages where n/len drops below the worker count still use every thread.
// ---- Cache-blocked six-step (Bailey) FFT for large transforms ------------
//
// A radix-2 transform of n Fr elements makes log2(n) full passes over
// 32 * n bytes; once the array outgrows L2 every pass streams from the outer
// cache levels. The six-step factorization n = R * C instead runs two
// batches of small contiguous FFTs (length R, then length C — each row is
// L1/L2-resident) separated by blocked transposes, trading the log2(n)
// streaming passes for ~3 transpose passes plus one twiddle pass. Field
// arithmetic is exact, so the reassociated evaluation produces bit-identical
// values to the radix-2 path.

// Transforms at or above this size take the six-step path.
constexpr size_t kSixStepMinN = static_cast<size_t>(1) << 17;

// Square tile edge for the blocked transpose: two 16x16 Fr tiles are 16 KiB,
// comfortably L1-resident.
constexpr size_t kTransposeTile = 16;

// dst (cols x rows) = transpose of src (rows x cols), tile by tile so both
// the row-major reads and the column-major writes stay within a tile set.
void TransposeBlocked(const Fr* src, size_t rows, size_t cols, Fr* dst) {
  const size_t row_tiles = (rows + kTransposeTile - 1) / kTransposeTile;
  const size_t col_tiles = (cols + kTransposeTile - 1) / kTransposeTile;
  ParallelFor(
      0, row_tiles * col_tiles,
      [&](size_t lo, size_t hi) {
        for (size_t t = lo; t < hi; ++t) {
          const size_t r0 = (t / col_tiles) * kTransposeTile;
          const size_t c0 = (t % col_tiles) * kTransposeTile;
          const size_t r1 = std::min(rows, r0 + kTransposeTile);
          const size_t c1 = std::min(cols, c0 + kTransposeTile);
          for (size_t r = r0; r < r1; ++r) {
            for (size_t c = c0; c < c1; ++c) {
              dst[c * rows + r] = src[r * cols + c];
            }
          }
        }
      },
      2 * kTransposeTile * kTransposeTile * sizeof(Fr));
}

// Dense per-stage butterfly twiddles for a length-L row transform whose
// elements step by tw_stride through the full table (tw[i * tw_stride] =
// w_L^i). Stages are concatenated smallest-first: len = 2 contributes one
// entry, len = 4 two, ..., L - 1 entries total. Building them densely once
// per pass lets every row's butterfly multiplies run as contiguous BatchMuls.
std::vector<Fr> BuildStageTwiddles(size_t L, const Fr* tw, size_t tw_stride) {
  std::vector<Fr> out;
  out.reserve(L);
  for (size_t len = 2; len <= L; len <<= 1) {
    const size_t half = len / 2;
    const size_t stage_stride = (L / len) * tw_stride;
    for (size_t j = 0; j < half; ++j) {
      out.push_back(tw[j * stage_stride]);
    }
  }
  return out;
}

// Serial in-place radix-2 DIT FFT over one contiguous cache-resident row,
// with the twiddle products of each stage batched through the dispatched
// Montgomery kernels. `stw` comes from BuildStageTwiddles(L, ...); `vbuf`
// holds at least L / 2 elements.
void FftRowSerial(Fr* a, size_t L, const Fr* stw, Fr* vbuf) {
  BitReversePermute(a, L);
  size_t off = 0;
  for (size_t len = 2; len <= L; len <<= 1) {
    const size_t half = len / 2;
    const Fr* twd = stw + off;
    off += half;
    for (size_t base = 0; base < L; base += len) {
      BatchMul(vbuf, a + base + half, twd, half);
      for (size_t j = 0; j < half; ++j) {
        const Fr u = a[base + j];
        const Fr v = vbuf[j];
        a[base + j] = u + v;
        a[base + half + j] = u - v;
      }
    }
  }
}

// Reused inter-pass buffer: one n-sized scratch per thread that calls large
// FFTs, grown monotonically so repeated proving passes pay the page faults
// once. The final swap donates the caller's old storage back to the pool.
std::vector<Fr>& SixStepScratch() {
  static thread_local std::vector<Fr> scratch;
  return scratch;
}

// Six-step FFT: view a as an R x C row-major matrix (j = r * C + c), then
//   1. transpose to C x R
//   2. length-R FFT of each row
//   3. scale entry (c, k1) by w^(c * k1)   [fused into step 2's row loop]
//   4. transpose to R x C
//   5. length-C FFT of each row
//   6. transpose to C x R, which is exactly the natural-order spectrum.
// tw[i] = w^i for i < n / 2 (the same table the radix-2 path reads).
void SixStepFft(std::vector<Fr>& a, const Fr* tw) {
  const size_t n = a.size();
  int logn = 0;
  while ((static_cast<size_t>(1) << logn) < n) {
    ++logn;
  }
  const size_t R = static_cast<size_t>(1) << ((logn + 1) / 2);
  const size_t C = n / R;
  std::vector<Fr>& b = SixStepScratch();
  b.resize(n);

  TransposeBlocked(a.data(), R, C, b.data());

  // Rows of b are length R; row c additionally picks up the cross twiddles
  // w^(c * k1), generated as a running product with ratio w^c = tw[c].
  const std::vector<Fr> stw_r = BuildStageTwiddles(R, tw, n / R);
  ParallelFor(
      0, C,
      [&](size_t lo, size_t hi) {
        std::vector<Fr> vbuf(R / 2);
        std::vector<Fr> fac(R);
        for (size_t c = lo; c < hi; ++c) {
          Fr* row = b.data() + c * R;
          FftRowSerial(row, R, stw_r.data(), vbuf.data());
          if (c == 0) {
            continue;  // w^0 = 1 for the whole row
          }
          const Fr ratio = tw[c];
          fac[0] = Fr::One();
          for (size_t k1 = 1; k1 < R; ++k1) {
            fac[k1] = fac[k1 - 1] * ratio;
          }
          BatchMul(row, row, fac.data(), R);
        }
      },
      R * sizeof(Fr));

  TransposeBlocked(b.data(), C, R, a.data());

  const std::vector<Fr> stw_c = BuildStageTwiddles(C, tw, n / C);
  ParallelFor(
      0, R,
      [&](size_t lo, size_t hi) {
        std::vector<Fr> vbuf(C / 2);
        for (size_t k1 = lo; k1 < hi; ++k1) {
          FftRowSerial(a.data() + k1 * C, C, stw_c.data(), vbuf.data());
        }
      },
      C * sizeof(Fr));

  TransposeBlocked(a.data(), R, C, b.data());
  a.swap(b);
}

void FftCore(std::vector<Fr>& a, const Fr* tw) {
  const size_t n = a.size();
  ZKML_CHECK_MSG((n & (n - 1)) == 0, "FFT size must be a power of two");
  kernelstats::RecordFft(n);
  if (n <= 1) {
    return;
  }
  if (n >= kSixStepMinN) {
    SixStepFft(a, tw);
    return;
  }
  BitReversePermute(a.data(), n);
  for (size_t len = 2; len <= n; len <<= 1) {
    const size_t half = len / 2;
    const size_t stride = n / len;
    ParallelFor(0, n / 2, [&](size_t lo, size_t hi) {
      size_t i = lo;
      while (i < hi) {
        const size_t blk = i / half;
        const size_t j0 = i % half;
        const size_t j1 = std::min(half, j0 + (hi - i));
        const size_t base = blk * len;
        for (size_t j = j0; j < j1; ++j) {
          const Fr u = a[base + j];
          Fr v = a[base + j + half];
          if (j != 0) {
            v *= tw[j * stride];  // tw[0] == 1: skip the multiply
          }
          a[base + j] = u + v;
          a[base + j + half] = u - v;
        }
        i += j1 - j0;
      }
    });
  }
}

}  // namespace

void Fft(std::vector<Fr>* values, const Fr& omega) {
  const size_t n = values->size();
  ZKML_CHECK_MSG((n & (n - 1)) == 0, "FFT size must be a power of two");
  if (n <= 1) {
    return;
  }
  const std::vector<Fr> tw = BuildPowers(omega, n / 2, Fr::One());
  FftCore(*values, tw.data());
}

EvaluationDomain::EvaluationDomain(int k) : k_(k), n_(static_cast<size_t>(1) << k) {
  omega_ = FrRootOfUnity(k);
  omega_inv_ = omega_.Inverse();
  n_inv_ = Fr::FromU64(n_).Inverse();
  elements_ = BuildPowers(omega_, n_, Fr::One());
  twiddles_.assign(elements_.begin(), elements_.begin() + n_ / 2);
  // omega^{-i} = omega^{n-i}, so the inverse table is the reversed tail of
  // elements_ (with omega^0 = 1 up front).
  inv_twiddles_.resize(n_ / 2);
  if (!inv_twiddles_.empty()) {
    inv_twiddles_[0] = Fr::One();
    for (size_t i = 1; i < n_ / 2; ++i) {
      inv_twiddles_[i] = elements_[n_ - i];
    }
  }
}

std::vector<Fr> EvaluationDomain::FftFromCoeffs(const std::vector<Fr>& coeffs) const {
  ZKML_CHECK_MSG(coeffs.size() <= n_, "polynomial larger than domain");
  std::vector<Fr> vals = coeffs;
  vals.resize(n_, Fr::Zero());
  FftCore(vals, twiddles_.data());
  return vals;
}

std::vector<Fr> EvaluationDomain::IfftToCoeffs(const std::vector<Fr>& evals) const {
  ZKML_CHECK(evals.size() == n_);
  std::vector<Fr> coeffs = evals;
  FftCore(coeffs, inv_twiddles_.data());
  ParallelFor(0, n_, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      coeffs[i] *= n_inv_;
    }
  });
  return coeffs;
}

const EvaluationDomain::CosetTables& EvaluationDomain::GetCosetTables(int ext_k) const {
  {
    std::lock_guard<std::mutex> lock(coset_mu_);
    auto it = coset_tables_.find(ext_k);
    if (it != coset_tables_.end()) {
      return it->second;
    }
  }
  // Build WITHOUT holding the mutex: BuildPowers runs ParallelFor, and a
  // thread helping the pool there can steal a task that re-enters this
  // function — with the lock held that self-deadlocks. Two threads may race
  // to build the same tables; emplace keeps the first and discards the
  // loser's copy (the values are identical either way, and std::map node
  // references stay stable).
  const size_t ext_n = n_ << ext_k;
  const Fr w_ext = FrRootOfUnity(k_ + ext_k);
  const Fr g = Fr::FromU64(FrParams::kGenerator);
  CosetTables t;
  t.twiddles = BuildPowers(w_ext, ext_n / 2, Fr::One());
  t.inv_twiddles = BuildPowers(w_ext.Inverse(), ext_n / 2, Fr::One());
  t.scale = BuildPowers(g, ext_n, Fr::One());
  t.inv_scale = BuildPowers(g.Inverse(), ext_n, Fr::FromU64(ext_n).Inverse());
  std::lock_guard<std::mutex> lock(coset_mu_);
  return coset_tables_.emplace(ext_k, std::move(t)).first->second;
}

std::vector<Fr> EvaluationDomain::CosetFftFromCoeffs(const std::vector<Fr>& coeffs,
                                                     int ext_k) const {
  std::vector<Fr> vals;
  CosetFftFromCoeffsInto(coeffs, ext_k, &vals);
  return vals;
}

void EvaluationDomain::CosetFftFromCoeffsInto(const std::vector<Fr>& coeffs, int ext_k,
                                              std::vector<Fr>* out) const {
  const size_t ext_n = n_ << ext_k;
  ZKML_CHECK_MSG(coeffs.size() <= ext_n, "polynomial larger than extended domain");
  ZKML_CHECK(out != &coeffs);
  const CosetTables& t = GetCosetTables(ext_k);
  std::vector<Fr>& vals = *out;
  vals.resize(ext_n);
  // Scale coefficient i by g^i (zero-padding the tail), then a plain FFT over
  // H_ext evaluates on gH_ext.
  const size_t m = coeffs.size();
  ParallelFor(0, ext_n, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      vals[i] = i < m ? coeffs[i] * t.scale[i] : Fr::Zero();
    }
  });
  FftCore(vals, t.twiddles.data());
}

std::vector<Fr> EvaluationDomain::CosetIfftToCoeffs(const std::vector<Fr>& evals,
                                                    int ext_k) const {
  const size_t ext_n = n_ << ext_k;
  ZKML_CHECK(evals.size() == ext_n);
  const CosetTables& t = GetCosetTables(ext_k);
  std::vector<Fr> coeffs = evals;
  FftCore(coeffs, t.inv_twiddles.data());
  ParallelFor(0, coeffs.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      coeffs[i] *= t.inv_scale[i];
    }
  });
  return coeffs;
}

std::vector<Fr> EvaluationDomain::VanishingInverseOnCoset(int ext_k) const {
  const size_t ext_n = n_ << ext_k;
  const size_t period = static_cast<size_t>(1) << ext_k;
  // Z_H(g * w_ext^j) = g^n * (w_ext^n)^j - 1, and w_ext^n is a primitive
  // 2^ext_k-th root of unity, so the values repeat with that period.
  const Fr g_to_n = Fr::FromU64(FrParams::kGenerator).Pow(U256::FromU64(n_));
  const Fr w_ext_n = FrRootOfUnity(k_ + ext_k).Pow(U256::FromU64(n_));
  std::vector<Fr> cycle(period);
  Fr cur = g_to_n;
  for (size_t j = 0; j < period; ++j) {
    cycle[j] = cur - Fr::One();
    ZKML_CHECK_MSG(!cycle[j].IsZero(), "vanishing polynomial vanished on coset");
    cur *= w_ext_n;
  }
  BatchInverse(&cycle);
  std::vector<Fr> out(ext_n);
  ParallelFor(0, ext_n, [&](size_t lo, size_t hi) {
    for (size_t j = lo; j < hi; ++j) {
      out[j] = cycle[j % period];
    }
  });
  return out;
}

Fr EvaluationDomain::EvaluateVanishing(const Fr& x) const {
  return x.Pow(U256::FromU64(n_)) - Fr::One();
}

Fr EvaluationDomain::EvaluateLagrange(size_t i, const Fr& x) const {
  const Fr num = elements_[i % n_] * EvaluateVanishing(x);
  const Fr den = Fr::FromU64(n_) * (x - elements_[i % n_]);
  return num * den.Inverse();
}

Fr EvaluationDomain::EvaluateLagrangeCombination(const std::vector<Fr>& values,
                                                 const Fr& x) const {
  ZKML_CHECK(values.size() <= n_);
  // sum_i v_i * w^i/(x - w^i) * (x^n - 1)/n, with the divisions batched.
  std::vector<Fr> denoms(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    denoms[i] = x - elements_[i];
  }
  BatchInverse(&denoms);
  Fr acc = Fr::Zero();
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].IsZero()) {
      continue;
    }
    acc += values[i] * elements_[i] * denoms[i];
  }
  return acc * EvaluateVanishing(x) * n_inv_;
}

}  // namespace zkml
