#include "src/poly/domain.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/thread_pool.h"

namespace zkml {
namespace {

void BitReversePermute(std::vector<Fr>* values) {
  const size_t n = values->size();
  size_t j = 0;
  for (size_t i = 1; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap((*values)[i], (*values)[j]);
    }
  }
}

}  // namespace

void Fft(std::vector<Fr>* values, const Fr& omega) {
  std::vector<Fr>& a = *values;
  const size_t n = a.size();
  ZKML_CHECK_MSG((n & (n - 1)) == 0, "FFT size must be a power of two");
  if (n <= 1) {
    return;
  }
  BitReversePermute(values);

  // Precompute omega^i for i < n/2 once; stage twiddles stride through it.
  std::vector<Fr> pow(n / 2);
  pow[0] = Fr::One();
  for (size_t i = 1; i < n / 2; ++i) {
    pow[i] = pow[i - 1] * omega;
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const size_t half = len / 2;
    const size_t stride = n / len;
    ParallelFor(0, n / len, [&](size_t blk_begin, size_t blk_end) {
      for (size_t blk = blk_begin; blk < blk_end; ++blk) {
        const size_t base = blk * len;
        for (size_t j = 0; j < half; ++j) {
          const Fr& w = pow[j * stride];
          Fr u = a[base + j];
          Fr v = a[base + j + half] * w;
          a[base + j] = u + v;
          a[base + j + half] = u - v;
        }
      }
    });
  }
}

EvaluationDomain::EvaluationDomain(int k) : k_(k), n_(static_cast<size_t>(1) << k) {
  omega_ = FrRootOfUnity(k);
  omega_inv_ = omega_.Inverse();
  n_inv_ = Fr::FromU64(n_).Inverse();
  elements_.resize(n_);
  elements_[0] = Fr::One();
  for (size_t i = 1; i < n_; ++i) {
    elements_[i] = elements_[i - 1] * omega_;
  }
}

std::vector<Fr> EvaluationDomain::FftFromCoeffs(const std::vector<Fr>& coeffs) const {
  ZKML_CHECK_MSG(coeffs.size() <= n_, "polynomial larger than domain");
  std::vector<Fr> vals = coeffs;
  vals.resize(n_, Fr::Zero());
  Fft(&vals, omega_);
  return vals;
}

std::vector<Fr> EvaluationDomain::IfftToCoeffs(const std::vector<Fr>& evals) const {
  ZKML_CHECK(evals.size() == n_);
  std::vector<Fr> coeffs = evals;
  Fft(&coeffs, omega_inv_);
  for (Fr& c : coeffs) {
    c *= n_inv_;
  }
  return coeffs;
}

std::vector<Fr> EvaluationDomain::CosetFftFromCoeffs(const std::vector<Fr>& coeffs,
                                                     int ext_k) const {
  const size_t ext_n = n_ << ext_k;
  ZKML_CHECK_MSG(coeffs.size() <= ext_n, "polynomial larger than extended domain");
  std::vector<Fr> vals = coeffs;
  vals.resize(ext_n, Fr::Zero());
  // Scale coefficient i by g^i, then a plain FFT over H_ext evaluates on gH_ext.
  const Fr g = Fr::FromU64(FrParams::kGenerator);
  Fr gi = Fr::One();
  for (size_t i = 0; i < vals.size(); ++i) {
    vals[i] *= gi;
    gi *= g;
  }
  Fft(&vals, FrRootOfUnity(k_ + ext_k));
  return vals;
}

std::vector<Fr> EvaluationDomain::CosetIfftToCoeffs(const std::vector<Fr>& evals,
                                                    int ext_k) const {
  const size_t ext_n = n_ << ext_k;
  ZKML_CHECK(evals.size() == ext_n);
  std::vector<Fr> coeffs = evals;
  Fft(&coeffs, FrRootOfUnity(k_ + ext_k).Inverse());
  const Fr ext_n_inv = Fr::FromU64(ext_n).Inverse();
  const Fr g_inv = Fr::FromU64(FrParams::kGenerator).Inverse();
  Fr gi = Fr::One();
  for (size_t i = 0; i < coeffs.size(); ++i) {
    coeffs[i] *= ext_n_inv * gi;
    gi *= g_inv;
  }
  return coeffs;
}

std::vector<Fr> EvaluationDomain::VanishingInverseOnCoset(int ext_k) const {
  const size_t ext_n = n_ << ext_k;
  const size_t period = static_cast<size_t>(1) << ext_k;
  // Z_H(g * w_ext^j) = g^n * (w_ext^n)^j - 1, and w_ext^n is a primitive
  // 2^ext_k-th root of unity, so the values repeat with that period.
  const Fr g_to_n = Fr::FromU64(FrParams::kGenerator).Pow(U256::FromU64(n_));
  const Fr w_ext_n = FrRootOfUnity(k_ + ext_k).Pow(U256::FromU64(n_));
  std::vector<Fr> cycle(period);
  Fr cur = g_to_n;
  for (size_t j = 0; j < period; ++j) {
    cycle[j] = cur - Fr::One();
    ZKML_CHECK_MSG(!cycle[j].IsZero(), "vanishing polynomial vanished on coset");
    cur *= w_ext_n;
  }
  BatchInverse(&cycle);
  std::vector<Fr> out(ext_n);
  for (size_t j = 0; j < ext_n; ++j) {
    out[j] = cycle[j % period];
  }
  return out;
}

Fr EvaluationDomain::EvaluateVanishing(const Fr& x) const {
  return x.Pow(U256::FromU64(n_)) - Fr::One();
}

Fr EvaluationDomain::EvaluateLagrange(size_t i, const Fr& x) const {
  const Fr num = elements_[i % n_] * EvaluateVanishing(x);
  const Fr den = Fr::FromU64(n_) * (x - elements_[i % n_]);
  return num * den.Inverse();
}

Fr EvaluationDomain::EvaluateLagrangeCombination(const std::vector<Fr>& values,
                                                 const Fr& x) const {
  ZKML_CHECK(values.size() <= n_);
  // sum_i v_i * w^i/(x - w^i) * (x^n - 1)/n, with the divisions batched.
  std::vector<Fr> denoms(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    denoms[i] = x - elements_[i];
  }
  BatchInverse(&denoms);
  Fr acc = Fr::Zero();
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].IsZero()) {
      continue;
    }
    acc += values[i] * elements_[i] * denoms[i];
  }
  return acc * EvaluateVanishing(x) * n_inv_;
}

}  // namespace zkml
