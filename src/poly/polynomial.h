// Dense univariate polynomials over Fr in coefficient form, plus the handful
// of algebraic operations the PLONK prover needs (Horner evaluation, synthetic
// division by a linear factor for KZG openings, naive products for tests).
#ifndef SRC_POLY_POLYNOMIAL_H_
#define SRC_POLY_POLYNOMIAL_H_

#include <cstddef>
#include <vector>

#include "src/ff/fields.h"

namespace zkml {

class Poly {
 public:
  Poly() = default;
  explicit Poly(std::vector<Fr> coeffs) : coeffs_(std::move(coeffs)) {}

  static Poly Zero() { return Poly(); }
  static Poly Constant(const Fr& c) { return Poly({c}); }

  const std::vector<Fr>& coeffs() const { return coeffs_; }
  std::vector<Fr>& coeffs() { return coeffs_; }
  size_t size() const { return coeffs_.size(); }
  bool IsZero() const;

  // Degree of the polynomial, -1 for the zero polynomial.
  int Degree() const;

  Fr Evaluate(const Fr& x) const;

  Poly operator+(const Poly& o) const;
  Poly operator-(const Poly& o) const;
  // Naive O(n*m) product — used by tests and tiny fixed polynomials only.
  Poly operator*(const Poly& o) const;
  Poly ScalarMul(const Fr& s) const;

  // Divides by (X - z); the remainder is p(z) and is returned via *remainder
  // when non-null. The quotient has degree deg(p) - 1.
  Poly DivideByLinear(const Fr& z, Fr* remainder = nullptr) const;

  // Drops high zero coefficients.
  void Truncate();

 private:
  std::vector<Fr> coeffs_;  // coeffs_[i] multiplies X^i
};

}  // namespace zkml

#endif  // SRC_POLY_POLYNOMIAL_H_
