// The zkml proving daemon. Listens on 127.0.0.1, speaks the length-prefixed
// wire protocol from src/serve/wire.h, and survives hostile clients: corrupt
// frames, slowloris writers, queue floods, and mid-proof disconnects are all
// answered (or shed) without taking the process down.
//
//   zkml_serve [--port=N] [--workers=N] [--queue=N] [--cache=N] [--coalesce=N]
//              [--deadline-ms=N] [--max-deadline-ms=N] [--io-timeout-ms=N]
//              [--drain-timeout-ms=N] [--max-frame-bytes=N]
//              [--report-dir=<dir>] [--metrics=<file>] [--port-file=<file>]
//              [--admin-port=N] [--admin-port-file=<file>]
//              [--event-log=<file>] [--trace-sample-n=N] [--trace-ring=N]
//
// Prints "zkml_serve listening on 127.0.0.1:<port>" once ready (and writes
// the bare port number to --port-file for scripts). --admin-port starts the
// HTTP ops plane (/metrics /healthz /statusz /tracez) on its own port
// (0 = ephemeral, written to --admin-port-file); --event-log appends JSONL
// operational events; --trace-sample-n=N traces every Nth job into /tracez.
// SIGTERM or SIGINT starts a graceful drain: admission stops (new requests
// answer SHUTTING_DOWN), in-flight jobs finish or are cancelled after
// --drain-timeout-ms, metrics flush, and the process exits 0. A second
// signal exits immediately.
//
// Exit codes: 0 clean drain, 1 usage/startup failure.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/obs/metrics.h"
#include "src/serve/server.h"

namespace {

volatile std::sig_atomic_t g_signal_count = 0;

void OnSignal(int) {
  ++g_signal_count;
  if (g_signal_count > 1) {
    std::_Exit(1);  // second signal: the operator wants out now
  }
}

bool ParseUintFlag(const std::string& arg, const char* name, uint64_t* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoull(arg.c_str() + prefix.size(), &end, 10);
  return end != nullptr && *end == '\0';
}

int Usage() {
  std::fprintf(stderr,
               "usage: zkml_serve [--port=N] [--workers=N] [--queue=N] [--cache=N] [--coalesce=N]\n"
               "                  [--deadline-ms=N] [--max-deadline-ms=N] [--io-timeout-ms=N]\n"
               "                  [--drain-timeout-ms=N] [--max-frame-bytes=N]\n"
               "                  [--report-dir=<dir>] [--metrics=<file>] [--port-file=<file>]\n"
               "                  [--admin-port=N] [--admin-port-file=<file>]\n"
               "                  [--event-log=<file>] [--trace-sample-n=N] [--trace-ring=N]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zkml;
  serve::ServeOptions options;
  std::string metrics_path, port_file, admin_port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    uint64_t v = 0;
    if (ParseUintFlag(arg, "port", &v)) {
      options.port = static_cast<uint16_t>(v);
    } else if (ParseUintFlag(arg, "admin-port", &v)) {
      options.admin_port = static_cast<int>(v);
    } else if (ParseUintFlag(arg, "trace-sample-n", &v)) {
      options.trace_sample_every = static_cast<uint32_t>(v);
    } else if (ParseUintFlag(arg, "trace-ring", &v)) {
      options.trace_ring_capacity = v;
    } else if (arg.rfind("--event-log=", 0) == 0) {
      options.event_log_path = arg.substr(12);
    } else if (arg.rfind("--admin-port-file=", 0) == 0) {
      admin_port_file = arg.substr(18);
    } else if (ParseUintFlag(arg, "workers", &v)) {
      options.num_workers = static_cast<int>(v);
    } else if (ParseUintFlag(arg, "queue", &v)) {
      options.queue_capacity = v;
    } else if (ParseUintFlag(arg, "cache", &v)) {
      options.cache_capacity = v;
    } else if (ParseUintFlag(arg, "coalesce", &v)) {
      options.coalesce_max = v;
    } else if (ParseUintFlag(arg, "deadline-ms", &v)) {
      options.default_deadline_ms = static_cast<uint32_t>(v);
    } else if (ParseUintFlag(arg, "max-deadline-ms", &v)) {
      options.max_deadline_ms = static_cast<uint32_t>(v);
    } else if (ParseUintFlag(arg, "io-timeout-ms", &v)) {
      options.io_timeout_ms = static_cast<int>(v);
    } else if (ParseUintFlag(arg, "drain-timeout-ms", &v)) {
      options.drain_timeout_ms = static_cast<int>(v);
    } else if (ParseUintFlag(arg, "max-frame-bytes", &v)) {
      options.max_frame_bytes = static_cast<uint32_t>(v);
    } else if (ParseUintFlag(arg, "opt-min-cols", &v)) {
      options.optimizer_min_columns = static_cast<int>(v);
    } else if (ParseUintFlag(arg, "opt-max-cols", &v)) {
      options.optimizer_max_columns = static_cast<int>(v);
    } else if (ParseUintFlag(arg, "opt-max-k", &v)) {
      options.optimizer_max_k = static_cast<int>(v);
    } else if (arg.rfind("--report-dir=", 0) == 0) {
      options.report_dir = arg.substr(13);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg.rfind("--port-file=", 0) == 0) {
      port_file = arg.substr(12);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }

  serve::ZkmlServer server(options);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", s.ToString().c_str());
    return 1;
  }

  struct sigaction sa = {};
  sa.sa_handler = OnSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  std::printf("zkml_serve listening on 127.0.0.1:%u (workers=%d queue=%zu cache=%zu)\n",
              server.port(), options.num_workers, options.queue_capacity,
              options.cache_capacity);
  if (server.admin_port() != 0) {
    std::printf("zkml_serve admin plane on http://127.0.0.1:%u "
                "(/metrics /healthz /statusz /tracez)\n",
                server.admin_port());
  }
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
  }
  if (!admin_port_file.empty()) {
    std::ofstream out(admin_port_file);
    out << server.admin_port() << "\n";
  }

  while (g_signal_count == 0) {
    // The signal handler only bumps a flag (Stop takes locks, so it cannot
    // run inside the handler); this loop is the bridge.
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  std::printf("zkml_serve draining...\n");
  std::fflush(stdout);
  server.Stop();
  const serve::ServerStats stats = server.stats();
  std::printf("zkml_serve drained clean: %llu jobs completed, %llu shed, %llu deadline, "
              "%llu cancelled, %llu protocol errors, %llu reaped\n",
              static_cast<unsigned long long>(stats.jobs_completed),
              static_cast<unsigned long long>(stats.jobs_shed_overload),
              static_cast<unsigned long long>(stats.jobs_deadline_exceeded),
              static_cast<unsigned long long>(stats.jobs_cancelled),
              static_cast<unsigned long long>(stats.protocol_errors),
              static_cast<unsigned long long>(stats.watchdog_reaped));
  if (!metrics_path.empty()) {
    if (Status s = obs::MetricsRegistry::Global().WriteFile(metrics_path); !s.ok()) {
      std::fprintf(stderr, "cannot write metrics %s: %s\n", metrics_path.c_str(),
                   s.ToString().c_str());
    }
  }
  return 0;
}
