// Quickstart: build a small model, compile it to an optimized ZK-SNARK
// circuit, prove one inference, and verify the proof.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/model/float_executor.h"
#include "src/model/model_builder.h"
#include "src/model/zoo.h"
#include "src/zkml/zkml.h"

int main() {
  using namespace zkml;

  // 1. Describe the model (here: a 2-layer MLP classifier). In a real
  //    deployment this comes from a converted tflite/onnx checkpoint.
  QuantParams quant;
  quant.sf_bits = 6;
  quant.table_bits = 10;
  ModelBuilder mb("quickstart-mlp", Shape({16}), quant, /*seed=*/7);
  int t = mb.FullyConnected(mb.input(), 12);
  t = mb.Activation(t, NonlinFn::kRelu);
  t = mb.FullyConnected(t, 4);
  Model model = mb.Finish(t);
  std::printf("model: %s (%lld parameters)\n", model.name.c_str(),
              static_cast<long long>(model.NumParameters()));

  // 2. Compile: the optimizer picks gadget implementations, column count,
  //    and grid size; keys are generated for the chosen layout.
  ZkmlOptions options;
  options.backend = PcsKind::kKzg;
  options.optimizer.min_columns = 8;
  options.optimizer.max_columns = 20;
  CompiledModel compiled = CompileModel(model, options);
  std::printf("layout: %d columns x 2^%d rows (optimizer %.2fs, keygen %.2fs)\n",
              compiled.layout.num_columns, compiled.layout.k, compiled.optimizer_seconds,
              compiled.keygen_seconds);

  // 3. Prove one inference.
  Tensor<float> input = SyntheticInput(model, 99);
  ZkmlProof proof = Prove(compiled, QuantizeTensor(input, quant));
  std::printf("proof: %zu bytes in %.2fs (witness %.3fs)\n", proof.bytes.size(),
              proof.prove_seconds, proof.witness_seconds);

  // 4. Verify: anyone holding the verifying key checks input -> output.
  const bool ok = Verify(compiled, proof);
  std::printf("verification: %s\n", ok ? "ACCEPTED" : "REJECTED");

  // The proven output matches the quantized model's logits.
  std::printf("proven logits:");
  for (int64_t i = 0; i < proof.output_q.NumElements(); ++i) {
    std::printf(" %.3f", DequantizeValue(proof.output_q.flat(i), quant));
  }
  std::printf("\n");
  return ok ? 0 : 1;
}
