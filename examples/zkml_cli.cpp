// The user-facing command-line interface (paper Fig. 3's "simple bash
// interface" and §8's standalone verifier): find the optimal circuit for a
// model, produce proofs, and verify them across process boundaries.
//
//   zkml_cli export <zoo-name> <model-file>          serialize a zoo model
//   zkml_cli inspect <model-file>                    print graph statistics
//   zkml_cli optimize <model-file> [kzg|ipa]         run the layout optimizer
//   zkml_cli profile <model-file> [kzg|ipa]          per-layer circuit resources
//   zkml_cli prove <model-file> <proof-file> [seed]  prove one inference
//   zkml_cli verify <model-file> <proof-file>        standalone verification
//   zkml_cli audit <model-file> [seed]               soundness audit: witness-
//                                                    mutation fuzzer, constraint
//                                                    coverage, forgery harness
//   zkml_cli telemetry-validate <json-file>          validate a telemetry file
//   zkml_cli telemetry-validate --prometheus <file>  validate a /metrics scrape
//
// Global telemetry flags (may appear anywhere on the command line):
//   --trace=<file>    write a Chrome/Perfetto trace of the whole command
//   --metrics=<file>  write the metrics registry (schema zkml.metrics/v1)
//   --report=<file>   prove: run report (zkml.run_report/v1); sharded prove:
//                     sharded report (zkml.sharded_proof/v1);
//                     profile: the profile as JSON (zkml.circuit_profile/v1);
//                     audit: soundness report (zkml.soundness/v1)
//   --shards=N        prove: N>1 cuts the model into cost-balanced shards
//                     proved concurrently; the proof file then holds a
//                     zkml.sharded_proof/v1 artifact, which `verify` detects
//                     and checks with one aggregated opening check
//   --batch=N         prove: N>1 proves N inferences (seeds seed..seed+N-1)
//                     in ONE circuit; the proof file then holds a
//                     zkml.batched_proof/v1 artifact, which `verify` detects
//                     (the statement is the concatenated per-inference
//                     [input ‖ output] segments)
//
// Proof files carry the proof bytes plus the public statement; `verify`
// rebuilds the verifying key deterministically from the model file, so the
// verifier never sees the prover's witness.
//
// Exit codes (documented in README.md; model and proof files are untrusted,
// so every malformed input maps to an exit code, never an abort):
//   0  success ("verify": proof VALID; "audit": circuit SOUND)
//   1  usage error or filesystem failure (cannot read/write a file)
//   2  proof rejected ("verify": proof well-formed-or-not but INVALID;
//      "audit": a soundness violation — surviving mutant, dead gate/lookup,
//      or an accepted forgery)
//   3  malformed input (model file or proof file failed to parse/validate)
//   4  interrupted (SIGINT/SIGTERM during prove or audit: the command stops
//      at the next cancellation checkpoint, writes whatever partial report
//      was requested, and exits without producing the proof)
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/layers/quant_executor.h"
#include "src/model/float_executor.h"
#include "src/model/serialize.h"
#include "src/model/shape_inference.h"
#include "src/model/zoo.h"
#include "src/obs/circuit_profile.h"
#include "src/obs/exposition.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/plonk/proof_io.h"
#include "src/zkml/batched.h"
#include "src/zkml/sharded.h"
#include "src/zkml/zkml.h"

namespace zkml {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitInvalidProof = 2;
constexpr int kExitMalformedInput = 3;
constexpr int kExitInterrupted = 4;

// Flipped by the SIGINT/SIGTERM handler; prove and audit poll it at their
// cancellation checkpoints (CancelToken::Cancel is async-signal-safe).
CancelToken g_interrupt;

void OnInterrupt(int) { g_interrupt.Cancel(); }

// Installed only for the long-running commands (prove, audit): a handler that
// merely sets a flag would turn Ctrl-C into a no-op for commands that never
// poll the token.
void InstallInterruptHandler() {
  struct sigaction sa = {};
  sa.sa_handler = OnInterrupt;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

// Loads a model file, printing the parse error and mapping it to the exit
// code contract. Returns false (with *exit_code set) on failure.
bool LoadModelOrReport(const std::string& path, Model* model, int* exit_code) {
  StatusOr<Model> loaded = LoadModelFromFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    *exit_code = loaded.status().code() == StatusCode::kIoError ? kExitUsage
                                                                : kExitMalformedInput;
    return false;
  }
  *model = std::move(loaded).value();
  return true;
}

ZkmlOptions CliOptions(PcsKind backend) {
  ZkmlOptions options;
  options.backend = backend;
  options.optimizer.min_columns = 8;
  options.optimizer.max_columns = 32;
  options.optimizer.max_k = 15;
  return options;
}

// Proof file: u32 proof length, proof bytes, u32 instance length, instances.
// The proof-bytes slot holds either a single-circuit proof or a
// zkml.sharded_proof/v1 artifact ("ZKSH" magic); `verify` sniffs which.
bool WriteProofFileBytes(const std::string& path, const std::vector<uint8_t>& bytes,
                         const std::vector<Fr>& instance) {
  std::vector<uint8_t> blob;
  for (int i = 0; i < 4; ++i) {
    blob.push_back(static_cast<uint8_t>(bytes.size() >> (8 * i)));
  }
  blob.insert(blob.end(), bytes.begin(), bytes.end());
  for (int i = 0; i < 4; ++i) {
    blob.push_back(static_cast<uint8_t>(instance.size() >> (8 * i)));
  }
  for (const Fr& v : instance) {
    ProofAppendFr(&blob, v);
  }
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(blob.data()), static_cast<std::streamsize>(blob.size()));
  return static_cast<bool>(out);
}

bool WriteProofFile(const std::string& path, const ZkmlProof& proof) {
  return WriteProofFileBytes(path, proof.bytes, proof.instance);
}

Status ReadProofFile(const std::string& path, std::vector<uint8_t>* proof,
                     std::vector<Fr>* instance) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return IoError("cannot open proof file: " + path);
  }
  std::vector<uint8_t> blob((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  size_t off = 0;
  uint32_t len = 0;
  ZKML_RETURN_IF_ERROR(ProofReadU32(blob, &off, &len, "proof length"));
  if (len > blob.size() - off) {
    return MalformedProofError("declared proof length " + std::to_string(len) +
                               " exceeds remaining file size " + std::to_string(blob.size() - off));
  }
  proof->assign(blob.begin() + static_cast<long>(off), blob.begin() + static_cast<long>(off + len));
  off += len;
  uint32_t n_inst = 0;
  ZKML_RETURN_IF_ERROR(ProofReadU32(blob, &off, &n_inst, "instance count"));
  // Length sanity before allocating: each instance value takes 32 bytes.
  if (static_cast<size_t>(n_inst) > (blob.size() - off) / kProofFrSize) {
    return MalformedProofError("declared instance count " + std::to_string(n_inst) +
                               " exceeds remaining file size");
  }
  instance->resize(n_inst);
  for (uint32_t i = 0; i < n_inst; ++i) {
    const std::string what = "instance value " + std::to_string(i);
    ZKML_RETURN_IF_ERROR(ProofReadFr(blob, &off, &(*instance)[i], what.c_str()));
  }
  return ProofExpectEnd(blob, off);
}

int CmdExport(const std::string& name, const std::string& path) {
  const Model model = MakeZooModel(name);
  if (!SaveModelToFile(model, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return kExitUsage;
  }
  std::printf("wrote %s (%lld parameters, %zu ops)\n", path.c_str(),
              static_cast<long long>(model.NumParameters()), model.ops.size());
  return kExitOk;
}

int CmdInspect(const std::string& path) {
  Model model;
  int exit_code = kExitOk;
  if (!LoadModelOrReport(path, &model, &exit_code)) {
    return exit_code;
  }
  const std::vector<Shape> shapes = InferShapes(model);
  std::printf("model %s: input %s, %lld parameters, ~%lld flops, quant sf=2^%d tables=2^%d\n",
              model.name.c_str(), model.input_shape.ToString().c_str(),
              static_cast<long long>(model.NumParameters()),
              static_cast<long long>(model.ApproxFlops()), model.quant.sf_bits,
              model.quant.table_bits);
  for (const Op& op : model.ops) {
    std::printf("  %-18s -> tensor %d %s\n", OpTypeName(op.type), op.output,
                shapes[static_cast<size_t>(op.output)].ToString().c_str());
  }
  return kExitOk;
}

int CmdOptimize(const std::string& path, PcsKind backend) {
  Model model;
  int exit_code = kExitOk;
  if (!LoadModelOrReport(path, &model, &exit_code)) {
    return exit_code;
  }
  OptimizerOptions opts = CliOptions(backend).optimizer;
  opts.backend = backend;
  const OptimizerResult result = OptimizeLayout(model, HardwareProfile::Cached(), opts);
  std::printf("optimal layout: %d columns x 2^%d rows (%zu plans in %.2fs)\n",
              result.best.layout.num_columns, result.best.layout.k, result.plans_evaluated,
              result.optimizer_seconds);
  std::printf("  gadgets: bias-chaining=%d relu-lookup=%d packed-arith=%d\n",
              result.best.layout.gadgets.dot_bias_chaining,
              result.best.layout.gadgets.relu_lookup, result.best.layout.gadgets.packed_arith);
  std::printf("  predicted proving: %.2fs (%zu FFTs, %zu MSMs); predicted proof: %zu bytes\n",
              result.best.cost.total_seconds, result.best.cost.n_ffts, result.best.cost.n_msms,
              result.best.proof_size_bytes);
  return kExitOk;
}

// Sharded prove (--shards=N, N>1): the model is cut into cost-balanced
// sub-circuits proved concurrently; the proof file's proof-bytes slot holds
// the zkml.sharded_proof/v1 artifact and the instance slot the composite
// statement, so `verify` works on the same file format.
int CmdProveSharded(const Model& model, const std::string& proof_path, uint64_t seed,
                    PcsKind backend, const std::string& report_path, int shards) {
  StatusOr<CompiledShardedModel> compiled =
      CompileSharded(model, static_cast<size_t>(shards), CliOptions(backend));
  if (!compiled.ok()) {
    std::fprintf(stderr, "sharded compile failed: %s\n", compiled.status().ToString().c_str());
    return kExitMalformedInput;
  }
  const Tensor<int64_t> input = QuantizeTensor(SyntheticInput(model, seed), model.quant);
  StatusOr<ShardedProof> proof = CreateShardedProof(*compiled, input, &g_interrupt);
  if (!proof.ok()) {
    std::fprintf(stderr, "sharded prove failed: %s\n", proof.status().ToString().c_str());
    return proof.status().code() == StatusCode::kCancelled ||
                   proof.status().code() == StatusCode::kDeadlineExceeded
               ? kExitInterrupted
               : kExitUsage;
  }
  if (!WriteProofFileBytes(proof_path, EncodeShardedProof(*proof), proof->instance)) {
    std::fprintf(stderr, "cannot write %s\n", proof_path.c_str());
    return kExitUsage;
  }
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << ShardedReportJson(*compiled, *proof).DumpPretty() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write run report %s\n", report_path.c_str());
      return kExitUsage;
    }
    std::printf("sharded run report -> %s\n", report_path.c_str());
  }
  std::printf("proved %s across %zu shards on input seed %llu in %.2fs "
              "(witness %.2fs, slowest shard %.2fs): %zu artifact bytes -> %s\n",
              model.name.c_str(), compiled->num_shards(),
              static_cast<unsigned long long>(seed), proof->prove_seconds,
              proof->witness_seconds,
              *std::max_element(proof->shard_prove_seconds.begin(),
                                proof->shard_prove_seconds.end()),
              proof->ProofBytes(), proof_path.c_str());
  return kExitOk;
}

// Batched prove (--batch=N, N>1): N inferences (synthetic inputs from seeds
// seed..seed+N-1) in ONE circuit; the proof file's proof-bytes slot holds the
// zkml.batched_proof/v1 artifact and the instance slot the concatenated
// statement, so `verify` works on the same file format.
int CmdProveBatched(const Model& model, const std::string& proof_path, uint64_t seed,
                    PcsKind backend, const std::string& report_path, int batch) {
  StatusOr<CompiledBatchedModel> compiled =
      CompileBatched(model, static_cast<size_t>(batch), CliOptions(backend));
  if (!compiled.ok()) {
    std::fprintf(stderr, "batched compile failed: %s\n", compiled.status().ToString().c_str());
    return kExitMalformedInput;
  }
  std::vector<Tensor<int64_t>> inputs_q;
  inputs_q.reserve(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    inputs_q.push_back(
        QuantizeTensor(SyntheticInput(model, seed + static_cast<uint64_t>(i)), model.quant));
  }
  StatusOr<BatchedProof> proof = CreateBatchedProof(*compiled, inputs_q, &g_interrupt);
  if (!proof.ok()) {
    std::fprintf(stderr, "batched prove failed: %s\n", proof.status().ToString().c_str());
    return proof.status().code() == StatusCode::kCancelled ||
                   proof.status().code() == StatusCode::kDeadlineExceeded
               ? kExitInterrupted
               : kExitUsage;
  }
  if (!WriteProofFileBytes(proof_path, EncodeBatchedProof(*proof), proof->instance)) {
    std::fprintf(stderr, "cannot write %s\n", proof_path.c_str());
    return kExitUsage;
  }
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << BatchedReportJson(*compiled, *proof).DumpPretty() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write run report %s\n", report_path.c_str());
      return kExitUsage;
    }
    std::printf("batched run report -> %s\n", report_path.c_str());
  }
  std::printf("proved %d inferences of %s (seeds %llu..%llu) in one circuit in %.2fs "
              "(%.2fs/inference, witness %.2fs): %zu artifact bytes -> %s\n",
              batch, model.name.c_str(), static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed + static_cast<uint64_t>(batch) - 1),
              proof->prove_seconds, proof->prove_seconds / batch, proof->witness_seconds,
              proof->ProofBytes(), proof_path.c_str());
  return kExitOk;
}

int CmdProve(const std::string& model_path, const std::string& proof_path, uint64_t seed,
             PcsKind backend, const std::string& report_path, int shards, int batch) {
  Model model;
  int exit_code = kExitOk;
  if (!LoadModelOrReport(model_path, &model, &exit_code)) {
    return exit_code;
  }
  if (batch > 1 && shards > 1) {
    std::fprintf(stderr, "--shards and --batch are mutually exclusive; pick one\n");
    return kExitUsage;
  }
  if (batch > 1) {
    return CmdProveBatched(model, proof_path, seed, backend, report_path, batch);
  }
  if (shards > 1) {
    return CmdProveSharded(model, proof_path, seed, backend, report_path, shards);
  }
  const CompiledModel compiled = CompileModel(model, CliOptions(backend));
  const Tensor<int64_t> input = QuantizeTensor(SyntheticInput(model, seed), model.quant);
  StatusOr<ZkmlProof> proof_or = ProveCancellable(compiled, input, &g_interrupt);
  if (!proof_or.ok()) {
    // Interrupted mid-proof: no proof file, but the partial run report (the
    // compile/layout half of the run) still lands if one was requested.
    std::fprintf(stderr, "interrupted: %s\n", proof_or.status().ToString().c_str());
    if (!report_path.empty()) {
      const obs::RunReport report = BuildRunReport(compiled, ZkmlProof{}, 0.0, model.name);
      if (Status s = report.WriteFile(report_path); s.ok()) {
        std::printf("partial run report -> %s\n", report_path.c_str());
      }
    }
    return kExitInterrupted;
  }
  const ZkmlProof proof = std::move(proof_or).value();
  if (!WriteProofFile(proof_path, proof)) {
    std::fprintf(stderr, "cannot write %s\n", proof_path.c_str());
    return kExitUsage;
  }
  if (!report_path.empty()) {
    const obs::RunReport report = BuildRunReport(compiled, proof);
    if (Status s = report.WriteFile(report_path); !s.ok()) {
      std::fprintf(stderr, "cannot write run report %s: %s\n", report_path.c_str(),
                   s.ToString().c_str());
      return kExitUsage;
    }
    std::printf("run report -> %s\n", report_path.c_str());
  }
  std::printf("proved %s on input seed %llu in %.2fs: %zu proof bytes -> %s\n",
              model.name.c_str(), static_cast<unsigned long long>(seed), proof.prove_seconds,
              proof.bytes.size(), proof_path.c_str());
  return kExitOk;
}

int CmdProfile(const std::string& path, PcsKind backend, const std::string& report_path) {
  Model model;
  int exit_code = kExitOk;
  if (!LoadModelOrReport(path, &model, &exit_code)) {
    return exit_code;
  }
  OptimizerOptions opts = CliOptions(backend).optimizer;
  opts.backend = backend;
  const OptimizerResult result = OptimizeLayout(model, HardwareProfile::Cached(), opts);
  const obs::CircuitProfile profile = obs::ProfileCircuit(model, result.best.layout);
  std::printf("%s", profile.ToTable().c_str());
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << profile.ToJson().DumpPretty() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", report_path.c_str());
      return kExitUsage;
    }
    std::printf("circuit profile -> %s\n", report_path.c_str());
  }
  return kExitOk;
}

int CmdAudit(const std::string& model_path, uint64_t seed, const std::string& report_path) {
  Model model;
  int exit_code = kExitOk;
  if (!LoadModelOrReport(model_path, &model, &exit_code)) {
    return exit_code;
  }
  SoundnessAuditOptions options;
  options.seed = seed;
  options.cancel = &g_interrupt;
  const Tensor<int64_t> input = QuantizeTensor(SyntheticInput(model, seed), model.quant);
  const SoundnessAudit audit = RunSoundnessAudit(model, input, options);

  std::printf("witness satisfied: %s\n", audit.witness_satisfied ? "yes" : "NO");
  std::printf("coverage: %zu gates (%llu dead), %zu lookups (%llu dead)\n",
              audit.coverage.gates.size(),
              static_cast<unsigned long long>(audit.coverage.dead_gates),
              audit.coverage.lookups.size(),
              static_cast<unsigned long long>(audit.coverage.dead_lookups));
  std::printf("mutation: %llu cells fuzzed (seed %llu, %llu exempt as padding, %llu as free "
              "witness), %llu/%llu mutants detected\n",
              static_cast<unsigned long long>(audit.mutation.cells_fuzzed),
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(audit.mutation.cells_unassigned),
              static_cast<unsigned long long>(audit.mutation.cells_free_witness),
              static_cast<unsigned long long>(audit.mutation.mutants_detected),
              static_cast<unsigned long long>(audit.mutation.mutants_tried));
  for (const SurvivingMutant& s : audit.mutation.survivors) {
    std::printf("  SURVIVOR: %s\n", s.description.c_str());
  }
  for (const GateCoverage& g : audit.coverage.gates) {
    if (g.active_rows == 0) {
      std::printf("  DEAD GATE: '%s' has no active row\n", g.name.c_str());
    }
  }
  for (const LookupCoverage& l : audit.coverage.lookups) {
    if (l.active_rows == 0) {
      std::printf("  DEAD LOOKUP: '%s' has no active row\n", l.name.c_str());
    }
  }
  if (audit.forgery_ran) {
    std::printf("forgery: honest kzg=%s ipa=%s accepted; forged kzg=%s ipa=%s rejected\n",
                audit.honest_kzg_accepted ? "yes" : "NO", audit.honest_ipa_accepted ? "yes" : "NO",
                audit.forged_kzg_rejected ? "yes" : "NO", audit.forged_ipa_rejected ? "yes" : "NO");
  }
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << audit.ToJson().DumpPretty() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", report_path.c_str());
      return kExitUsage;
    }
    std::printf("soundness report -> %s\n", report_path.c_str());
  }
  if (audit.interrupted) {
    // The report above is the partial audit (engines that ran to completion).
    std::printf("INTERRUPTED (partial audit — not a clean bill)\n");
    return kExitInterrupted;
  }
  std::printf(audit.Passed() ? "SOUND\n" : "UNSOUND\n");
  return audit.Passed() ? kExitOk : kExitInvalidProof;
}

// Validates a telemetry JSON file: must parse strictly and be either a Chrome
// trace (object with a traceEvents array) or a zkml.* schema document.
int CmdTelemetryValidate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return kExitUsage;
  }
  const std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  StatusOr<obs::Json> parsed = obs::Json::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return kExitMalformedInput;
  }
  const obs::Json& j = parsed.value();
  if (const obs::Json* events = j.Find("traceEvents"); events != nullptr && events->is_array()) {
    std::printf("%s: valid chrome trace (%zu events)\n", path.c_str(), events->size());
    return kExitOk;
  }
  if (const obs::Json* schema = j.Find("schema"); schema != nullptr && schema->is_string() &&
                                                  schema->AsString().rfind("zkml.", 0) == 0) {
    // Schema-specific structural checks on top of the generic zkml.* accept.
    if (schema->AsString() == kShardedProofSchema) {
      const obs::Json* num = j.Find("num_shards");
      const obs::Json* shards = j.Find("shards");
      const obs::Json* bounds = j.Find("boundary_elements");
      if (num == nullptr || shards == nullptr || !shards->is_array() || bounds == nullptr ||
          !bounds->is_array()) {
        std::fprintf(stderr, "%s: %s document missing num_shards/shards/boundary_elements\n",
                     path.c_str(), kShardedProofSchema);
        return kExitMalformedInput;
      }
      const size_t k = static_cast<size_t>(num->AsInt());
      if (shards->size() != k || bounds->size() != k + 1) {
        std::fprintf(stderr,
                     "%s: inconsistent shard counts (num_shards %zu, %zu shard entries, "
                     "%zu boundaries; want k and k+1)\n",
                     path.c_str(), k, shards->size(), bounds->size());
        return kExitMalformedInput;
      }
    }
    if (schema->AsString() == kBatchedProofSchema) {
      const obs::Json* batch = j.Find("batch");
      const obs::Json* elems = j.Find("instance_elements");
      if (batch == nullptr || elems == nullptr || !elems->is_array()) {
        std::fprintf(stderr, "%s: %s document missing batch/instance_elements\n", path.c_str(),
                     kBatchedProofSchema);
        return kExitMalformedInput;
      }
      if (elems->size() != static_cast<size_t>(batch->AsInt())) {
        std::fprintf(stderr,
                     "%s: inconsistent batch (batch %lld, %zu instance_elements entries)\n",
                     path.c_str(), static_cast<long long>(batch->AsInt()), elems->size());
        return kExitMalformedInput;
      }
    }
    std::printf("%s: valid telemetry document (schema %s)\n", path.c_str(),
                schema->AsString().c_str());
    return kExitOk;
  }
  std::fprintf(stderr, "%s: JSON is neither a chrome trace nor a zkml.* schema document\n",
               path.c_str());
  return kExitMalformedInput;
}

// Validates a Prometheus text-exposition page (a /metrics scrape saved to a
// file) with the same strict parser zkml_loadgen uses, and prints a summary.
int CmdTelemetryValidatePrometheus(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return kExitUsage;
  }
  const std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  StatusOr<obs::PromText> page = obs::ParsePrometheusText(text);
  if (!page.ok()) {
    std::fprintf(stderr, "%s: invalid Prometheus exposition: %s\n", path.c_str(),
                 page.status().ToString().c_str());
    return kExitMalformedInput;
  }
  // Histogram invariant: every _count sample must equal its le="+Inf" bucket.
  for (const auto& [name, type] : page->types) {
    if (type != "histogram") continue;
    const obs::PromSample* inf = page->Find(name + "_bucket", "le", "+Inf");
    const obs::PromSample* count = page->Find(name + "_count");
    if (inf == nullptr || count == nullptr || inf->value != count->value) {
      std::fprintf(stderr, "%s: histogram %s: le=\"+Inf\" bucket disagrees with _count\n",
                   path.c_str(), name.c_str());
      return kExitMalformedInput;
    }
  }
  std::printf("%s: valid Prometheus exposition (%zu samples, %zu TYPE declarations)\n",
              path.c_str(), page->samples.size(), page->types.size());
  return kExitOk;
}

int CmdVerify(const std::string& model_path, const std::string& proof_path, PcsKind backend) {
  Model model;
  int exit_code = kExitOk;
  if (!LoadModelOrReport(model_path, &model, &exit_code)) {
    return exit_code;
  }
  std::vector<uint8_t> proof;
  std::vector<Fr> instance;
  if (Status s = ReadProofFile(proof_path, &proof, &instance); !s.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", proof_path.c_str(), s.ToString().c_str());
    return s.code() == StatusCode::kIoError ? kExitUsage : kExitMalformedInput;
  }
  // Sharded artifacts ("ZKSH" magic) re-derive the partition from the shard
  // count the artifact claims; a lying count fails the stitch check below.
  if (LooksLikeShardedProof(proof)) {
    StatusOr<DecodedShardedProof> decoded = DecodeShardedProof(proof);
    if (!decoded.ok()) {
      std::fprintf(stderr, "error decoding sharded artifact: %s\n",
                   decoded.status().ToString().c_str());
      return kExitMalformedInput;
    }
    StatusOr<CompiledShardedModel> compiled =
        CompileSharded(model, decoded->shard_proofs.size(), CliOptions(backend));
    if (!compiled.ok()) {
      std::fprintf(stderr, "sharded compile failed: %s\n", compiled.status().ToString().c_str());
      return kExitMalformedInput;
    }
    const VerifyResult result = VerifySharded(*compiled, instance, proof);
    if (result.ok()) {
      std::printf("VALID (%zu shards, %s)\n", compiled->num_shards(),
                  backend == PcsKind::kKzg ? "aggregated opening check"
                                           : "per-shard opening checks");
      return kExitOk;
    }
    std::printf("INVALID (%s)\n", result.ToString().c_str());
    return kExitInvalidProof;
  }
  // Batched artifacts ("ZKBP" magic) re-derive the batch size from the
  // artifact's per-inference segment count; a lying count fails the stitch
  // check against the concatenated statement.
  if (LooksLikeBatchedProof(proof)) {
    StatusOr<DecodedBatchedProof> decoded = DecodeBatchedProof(proof);
    if (!decoded.ok()) {
      std::fprintf(stderr, "error decoding batched artifact: %s\n",
                   decoded.status().ToString().c_str());
      return kExitMalformedInput;
    }
    StatusOr<CompiledBatchedModel> compiled =
        CompileBatched(model, decoded->instances.size(), CliOptions(backend));
    if (!compiled.ok()) {
      std::fprintf(stderr, "batched compile failed: %s\n", compiled.status().ToString().c_str());
      return kExitMalformedInput;
    }
    const VerifyResult result = VerifyBatchedDetailed(*compiled, instance, proof);
    if (result.ok()) {
      std::printf("VALID (%zu inferences, one proof)\n", compiled->batch());
      return kExitOk;
    }
    std::printf("INVALID (%s)\n", result.ToString().c_str());
    return kExitInvalidProof;
  }
  // The verifier recompiles deterministically (same optimizer + setup seed),
  // obtaining the same verifying key the prover used — no witness involved.
  const CompiledModel compiled = CompileModel(model, CliOptions(backend));
  const VerifyResult result = VerifyDetailed(compiled.pk.vk, *compiled.pcs, instance, proof);
  if (result.ok()) {
    std::printf("VALID\n");
    return kExitOk;
  }
  std::printf("INVALID (%s)\n", result.ToString().c_str());
  return kExitInvalidProof;
}

}  // namespace
}  // namespace zkml

namespace zkml {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: zkml_cli [--trace=<f>] [--metrics=<f>] [--report=<f>] <command>\n"
               "       zkml_cli export <zoo-name> <model-file>\n"
               "       zkml_cli inspect <model-file>\n"
               "       zkml_cli optimize <model-file> [kzg|ipa]\n"
               "       zkml_cli profile <model-file> [kzg|ipa]\n"
               "       zkml_cli prove [--shards=N|--batch=N] <model-file> <proof-file> [seed] "
               "[kzg|ipa]\n"
               "       zkml_cli verify <model-file> <proof-file> [kzg|ipa]\n"
               "       zkml_cli audit <model-file> [seed]\n"
               "       zkml_cli telemetry-validate [--prometheus] <file>\n");
  return kExitUsage;
}

int Dispatch(const std::vector<std::string>& args, const std::string& report_path,
             bool prometheus, int shards, int batch) {
  if (args.size() < 2) {
    return Usage();
  }
  const std::string& cmd = args[0];
  auto backend_arg = [&](size_t index, PcsKind fallback) {
    if (args.size() > index && args[index] == "ipa") {
      return PcsKind::kIpa;
    }
    if (args.size() > index && args[index] == "kzg") {
      return PcsKind::kKzg;
    }
    return fallback;
  };
  if (cmd == "export" && args.size() >= 3) {
    return CmdExport(args[1], args[2]);
  }
  if (cmd == "inspect") {
    return CmdInspect(args[1]);
  }
  if (cmd == "optimize") {
    return CmdOptimize(args[1], backend_arg(2, PcsKind::kKzg));
  }
  if (cmd == "profile") {
    return CmdProfile(args[1], backend_arg(2, PcsKind::kKzg), report_path);
  }
  if (cmd == "prove" && args.size() >= 3) {
    InstallInterruptHandler();
    const uint64_t seed = args.size() > 3 ? std::strtoull(args[3].c_str(), nullptr, 10) : 7;
    return CmdProve(args[1], args[2], seed, backend_arg(4, PcsKind::kKzg), report_path, shards,
                    batch);
  }
  if (cmd == "verify" && args.size() >= 3) {
    return CmdVerify(args[1], args[2], backend_arg(3, PcsKind::kKzg));
  }
  if (cmd == "audit") {
    InstallInterruptHandler();
    const uint64_t seed = args.size() > 2 ? std::strtoull(args[2].c_str(), nullptr, 10) : 7;
    return CmdAudit(args[1], seed, report_path);
  }
  if (cmd == "telemetry-validate") {
    return prometheus ? CmdTelemetryValidatePrometheus(args[1]) : CmdTelemetryValidate(args[1]);
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return kExitUsage;
}

}  // namespace
}  // namespace zkml

int main(int argc, char** argv) {
  using namespace zkml;
  // Telemetry flags may appear anywhere; everything else is positional.
  std::string trace_path, metrics_path, report_path;
  bool prometheus = false;
  int shards = 0;
  int batch = 0;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(9);
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::atoi(arg.substr(9).c_str());
    } else if (arg.rfind("--batch=", 0) == 0) {
      batch = std::atoi(arg.substr(8).c_str());
    } else if (arg == "--prometheus") {
      prometheus = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    return Usage();
  }

  obs::Tracer tracer;
  int code;
  {
    // The scope must close before export so every span has ended.
    obs::TracerScope scope(trace_path.empty() ? nullptr : &tracer);
    code = Dispatch(args, report_path, prometheus, shards, batch);
  }
  if (!trace_path.empty()) {
    if (Status s = tracer.WriteChromeTrace(trace_path); !s.ok()) {
      std::fprintf(stderr, "cannot write trace %s: %s\n", trace_path.c_str(),
                   s.ToString().c_str());
      if (code == kExitOk) {
        code = kExitUsage;
      }
    } else {
      std::fprintf(stderr, "trace (%zu spans) -> %s\n", tracer.Records().size(),
                   trace_path.c_str());
    }
  }
  if (!metrics_path.empty()) {
    obs::PublishThreadPoolStats(obs::MetricsRegistry::Global(), ThreadPool::Global());
    if (Status s = obs::MetricsRegistry::Global().WriteFile(metrics_path); !s.ok()) {
      std::fprintf(stderr, "cannot write metrics %s: %s\n", metrics_path.c_str(),
                   s.ToString().c_str());
      if (code == kExitOk) {
        code = kExitUsage;
      }
    } else {
      std::fprintf(stderr, "metrics -> %s\n", metrics_path.c_str());
    }
  }
  return code;
}
