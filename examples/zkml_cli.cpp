// The user-facing command-line interface (paper Fig. 3's "simple bash
// interface" and §8's standalone verifier): find the optimal circuit for a
// model, produce proofs, and verify them across process boundaries.
//
//   zkml_cli export <zoo-name> <model-file>          serialize a zoo model
//   zkml_cli inspect <model-file>                    print graph statistics
//   zkml_cli optimize <model-file> [kzg|ipa]         run the layout optimizer
//   zkml_cli prove <model-file> <proof-file> [seed]  prove one inference
//   zkml_cli verify <model-file> <proof-file>        standalone verification
//
// Proof files carry the proof bytes plus the public statement; `verify`
// rebuilds the verifying key deterministically from the model file, so the
// verifier never sees the prover's witness.
//
// Exit codes (documented in README.md; model and proof files are untrusted,
// so every malformed input maps to an exit code, never an abort):
//   0  success ("verify": proof VALID)
//   1  usage error or filesystem failure (cannot read/write a file)
//   2  proof rejected ("verify": proof well-formed-or-not but INVALID)
//   3  malformed input (model file or proof file failed to parse/validate)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/layers/quant_executor.h"
#include "src/model/float_executor.h"
#include "src/model/serialize.h"
#include "src/model/shape_inference.h"
#include "src/model/zoo.h"
#include "src/plonk/proof_io.h"
#include "src/zkml/zkml.h"

namespace zkml {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitInvalidProof = 2;
constexpr int kExitMalformedInput = 3;

// Loads a model file, printing the parse error and mapping it to the exit
// code contract. Returns false (with *exit_code set) on failure.
bool LoadModelOrReport(const std::string& path, Model* model, int* exit_code) {
  StatusOr<Model> loaded = LoadModelFromFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    *exit_code = loaded.status().code() == StatusCode::kIoError ? kExitUsage
                                                                : kExitMalformedInput;
    return false;
  }
  *model = std::move(loaded).value();
  return true;
}

ZkmlOptions CliOptions(PcsKind backend) {
  ZkmlOptions options;
  options.backend = backend;
  options.optimizer.min_columns = 8;
  options.optimizer.max_columns = 32;
  options.optimizer.max_k = 15;
  return options;
}

// Proof file: u32 proof length, proof bytes, u32 instance length, instances.
bool WriteProofFile(const std::string& path, const ZkmlProof& proof) {
  std::vector<uint8_t> blob;
  for (int i = 0; i < 4; ++i) {
    blob.push_back(static_cast<uint8_t>(proof.bytes.size() >> (8 * i)));
  }
  blob.insert(blob.end(), proof.bytes.begin(), proof.bytes.end());
  for (int i = 0; i < 4; ++i) {
    blob.push_back(static_cast<uint8_t>(proof.instance.size() >> (8 * i)));
  }
  for (const Fr& v : proof.instance) {
    ProofAppendFr(&blob, v);
  }
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(blob.data()), static_cast<std::streamsize>(blob.size()));
  return static_cast<bool>(out);
}

Status ReadProofFile(const std::string& path, std::vector<uint8_t>* proof,
                     std::vector<Fr>* instance) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return IoError("cannot open proof file: " + path);
  }
  std::vector<uint8_t> blob((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  size_t off = 0;
  uint32_t len = 0;
  ZKML_RETURN_IF_ERROR(ProofReadU32(blob, &off, &len, "proof length"));
  if (len > blob.size() - off) {
    return MalformedProofError("declared proof length " + std::to_string(len) +
                               " exceeds remaining file size " + std::to_string(blob.size() - off));
  }
  proof->assign(blob.begin() + static_cast<long>(off), blob.begin() + static_cast<long>(off + len));
  off += len;
  uint32_t n_inst = 0;
  ZKML_RETURN_IF_ERROR(ProofReadU32(blob, &off, &n_inst, "instance count"));
  // Length sanity before allocating: each instance value takes 32 bytes.
  if (static_cast<size_t>(n_inst) > (blob.size() - off) / kProofFrSize) {
    return MalformedProofError("declared instance count " + std::to_string(n_inst) +
                               " exceeds remaining file size");
  }
  instance->resize(n_inst);
  for (uint32_t i = 0; i < n_inst; ++i) {
    const std::string what = "instance value " + std::to_string(i);
    ZKML_RETURN_IF_ERROR(ProofReadFr(blob, &off, &(*instance)[i], what.c_str()));
  }
  return ProofExpectEnd(blob, off);
}

int CmdExport(const std::string& name, const std::string& path) {
  const Model model = MakeZooModel(name);
  if (!SaveModelToFile(model, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return kExitUsage;
  }
  std::printf("wrote %s (%lld parameters, %zu ops)\n", path.c_str(),
              static_cast<long long>(model.NumParameters()), model.ops.size());
  return kExitOk;
}

int CmdInspect(const std::string& path) {
  Model model;
  int exit_code = kExitOk;
  if (!LoadModelOrReport(path, &model, &exit_code)) {
    return exit_code;
  }
  const std::vector<Shape> shapes = InferShapes(model);
  std::printf("model %s: input %s, %lld parameters, ~%lld flops, quant sf=2^%d tables=2^%d\n",
              model.name.c_str(), model.input_shape.ToString().c_str(),
              static_cast<long long>(model.NumParameters()),
              static_cast<long long>(model.ApproxFlops()), model.quant.sf_bits,
              model.quant.table_bits);
  for (const Op& op : model.ops) {
    std::printf("  %-18s -> tensor %d %s\n", OpTypeName(op.type), op.output,
                shapes[static_cast<size_t>(op.output)].ToString().c_str());
  }
  return kExitOk;
}

int CmdOptimize(const std::string& path, PcsKind backend) {
  Model model;
  int exit_code = kExitOk;
  if (!LoadModelOrReport(path, &model, &exit_code)) {
    return exit_code;
  }
  OptimizerOptions opts = CliOptions(backend).optimizer;
  opts.backend = backend;
  const OptimizerResult result = OptimizeLayout(model, HardwareProfile::Cached(), opts);
  std::printf("optimal layout: %d columns x 2^%d rows (%zu plans in %.2fs)\n",
              result.best.layout.num_columns, result.best.layout.k, result.plans_evaluated,
              result.optimizer_seconds);
  std::printf("  gadgets: bias-chaining=%d relu-lookup=%d packed-arith=%d\n",
              result.best.layout.gadgets.dot_bias_chaining,
              result.best.layout.gadgets.relu_lookup, result.best.layout.gadgets.packed_arith);
  std::printf("  predicted proving: %.2fs (%zu FFTs, %zu MSMs); predicted proof: %zu bytes\n",
              result.best.cost.total_seconds, result.best.cost.n_ffts, result.best.cost.n_msms,
              result.best.proof_size_bytes);
  return kExitOk;
}

int CmdProve(const std::string& model_path, const std::string& proof_path, uint64_t seed,
             PcsKind backend) {
  Model model;
  int exit_code = kExitOk;
  if (!LoadModelOrReport(model_path, &model, &exit_code)) {
    return exit_code;
  }
  const CompiledModel compiled = CompileModel(model, CliOptions(backend));
  const Tensor<int64_t> input = QuantizeTensor(SyntheticInput(model, seed), model.quant);
  const ZkmlProof proof = Prove(compiled, input);
  if (!WriteProofFile(proof_path, proof)) {
    std::fprintf(stderr, "cannot write %s\n", proof_path.c_str());
    return kExitUsage;
  }
  std::printf("proved %s on input seed %llu in %.2fs: %zu proof bytes -> %s\n",
              model.name.c_str(), static_cast<unsigned long long>(seed), proof.prove_seconds,
              proof.bytes.size(), proof_path.c_str());
  return kExitOk;
}

int CmdVerify(const std::string& model_path, const std::string& proof_path, PcsKind backend) {
  Model model;
  int exit_code = kExitOk;
  if (!LoadModelOrReport(model_path, &model, &exit_code)) {
    return exit_code;
  }
  // The verifier recompiles deterministically (same optimizer + setup seed),
  // obtaining the same verifying key the prover used — no witness involved.
  const CompiledModel compiled = CompileModel(model, CliOptions(backend));
  std::vector<uint8_t> proof;
  std::vector<Fr> instance;
  if (Status s = ReadProofFile(proof_path, &proof, &instance); !s.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", proof_path.c_str(), s.ToString().c_str());
    return s.code() == StatusCode::kIoError ? kExitUsage : kExitMalformedInput;
  }
  const VerifyResult result = VerifyDetailed(compiled.pk.vk, *compiled.pcs, instance, proof);
  if (result.ok()) {
    std::printf("VALID\n");
    return kExitOk;
  }
  std::printf("INVALID (%s)\n", result.ToString().c_str());
  return kExitInvalidProof;
}

}  // namespace
}  // namespace zkml

int main(int argc, char** argv) {
  using namespace zkml;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: zkml_cli export <zoo-name> <model-file>\n"
                 "       zkml_cli inspect <model-file>\n"
                 "       zkml_cli optimize <model-file> [kzg|ipa]\n"
                 "       zkml_cli prove <model-file> <proof-file> [seed] [kzg|ipa]\n"
                 "       zkml_cli verify <model-file> <proof-file> [kzg|ipa]\n");
    return 1;
  }
  const std::string cmd = argv[1];
  auto backend_arg = [&](int index, PcsKind fallback) {
    if (argc > index && std::strcmp(argv[index], "ipa") == 0) {
      return PcsKind::kIpa;
    }
    if (argc > index && std::strcmp(argv[index], "kzg") == 0) {
      return PcsKind::kKzg;
    }
    return fallback;
  };
  if (cmd == "export" && argc >= 4) {
    return CmdExport(argv[2], argv[3]);
  }
  if (cmd == "inspect") {
    return CmdInspect(argv[2]);
  }
  if (cmd == "optimize") {
    return CmdOptimize(argv[2], backend_arg(3, PcsKind::kKzg));
  }
  if (cmd == "prove" && argc >= 4) {
    const uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 7;
    return CmdProve(argv[2], argv[3], seed, backend_arg(5, PcsKind::kKzg));
  }
  if (cmd == "verify" && argc >= 4) {
    return CmdVerify(argv[2], argv[3], backend_arg(4, PcsKind::kKzg));
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 1;
}
