// Trustless recommendation audit (paper Fig. 1-2): the platform commits to a
// fixed ranking model, proves that each shown item's score was produced by
// that model, and an auditor verifies the proofs and the claimed ranking —
// without ever seeing the model weights.
//
//   $ ./examples/audit_demo
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/model/zoo.h"
#include "src/zkml/zkml.h"

int main() {
  using namespace zkml;

  // The platform side: the (private-weight) MaskNet ranking model, compiled
  // once. The verifying key acts as the public model commitment.
  Model model = MakeMaskNet();
  ZkmlOptions options;
  options.backend = PcsKind::kKzg;
  options.optimizer.min_columns = 10;
  options.optimizer.max_columns = 24;
  CompiledModel compiled = CompileModel(model, options);
  std::printf("[platform] committed to ranking model '%s' (layout %d cols x 2^%d rows)\n",
              model.name.c_str(), compiled.layout.num_columns, compiled.layout.k);

  // Score four candidate tweets (feature vectors are public to the auditor).
  constexpr int kCandidates = 4;
  std::vector<ZkmlProof> proofs;
  std::vector<double> scores;
  for (int c = 0; c < kCandidates; ++c) {
    Tensor<int64_t> features = QuantizeTensor(SyntheticInput(model, 500 + c), model.quant);
    ZkmlProof proof = Prove(compiled, features);
    const double score = DequantizeValue(proof.output_q.flat(0), model.quant);
    std::printf("[platform] candidate %d -> score %.4f (proof %zu bytes, %.2fs)\n", c, score,
                proof.bytes.size(), proof.prove_seconds);
    proofs.push_back(std::move(proof));
    scores.push_back(score);
  }
  // The platform publishes the ranking (argsort of scores).
  std::vector<int> ranking(kCandidates);
  for (int i = 0; i < kCandidates; ++i) {
    ranking[i] = i;
  }
  std::sort(ranking.begin(), ranking.end(), [&](int a, int b) { return scores[a] > scores[b]; });

  // The auditor side: verify each score proof, then check the ranking is the
  // honest argsort of the proven scores.
  bool all_ok = true;
  for (int c = 0; c < kCandidates; ++c) {
    const bool ok = Verify(compiled.pk.vk, *compiled.pcs, proofs[c].instance, proofs[c].bytes);
    std::printf("[auditor] proof for candidate %d: %s\n", c, ok ? "valid" : "INVALID");
    all_ok = all_ok && ok;
  }
  for (int i = 0; i + 1 < kCandidates; ++i) {
    if (scores[ranking[i]] < scores[ranking[i + 1]]) {
      all_ok = false;
    }
  }
  std::printf("[auditor] ranking");
  for (int r : ranking) {
    std::printf(" %d", r);
  }
  std::printf(" %s\n", all_ok ? "is consistent with the committed model: AUDIT PASSED"
                              : ": AUDIT FAILED");
  return all_ok ? 0 : 1;
}
