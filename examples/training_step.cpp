// Proof of a training step (paper Table 2 lists training among ZKML's
// capabilities). This example builds the circuit at the gadget level: one SGD
// step of linear regression — forward pass, loss gradient, weight update —
// with the current weights as private witness. The updated weights are
// exposed publicly here for demonstration; a deployment would instead chain
// weight commitments across steps (paper §2, trustless audits).
//
//   $ ./examples/training_step
#include <cstdio>
#include <vector>

#include "src/base/rng.h"
#include "src/gadgets/circuit_builder.h"
#include "src/plonk/keygen.h"
#include "src/plonk/mock_prover.h"
#include "src/plonk/prover.h"
#include "src/plonk/verifier.h"
#include "src/zkml/zkml.h"

int main() {
  using namespace zkml;
  constexpr int64_t kDim = 8;
  constexpr double kLr = 0.25;  // learning rate

  BuilderOptions opts;
  opts.num_io_columns = 10;
  opts.quant.sf_bits = 6;
  opts.quant.table_bits = 10;
  opts.gadgets.nonlin_fns = {};
  opts.estimate_only = false;
  opts.k = 11;
  CircuitBuilder cb(opts);
  const QuantParams& qp = opts.quant;

  // Public training sample (x, y); private current weights w.
  Rng rng(9);
  std::vector<Operand> x, w;
  double y_target = 0.3;
  for (int64_t i = 0; i < kDim; ++i) {
    x.push_back(cb.PublicInput(QuantizeValue(rng.NextGaussian() * 0.4, qp)));
    w.push_back(cb.Fresh(QuantizeValue(rng.NextGaussian() * 0.3, qp)));
  }
  const Operand y = cb.PublicInput(QuantizeValue(y_target, qp));

  // Forward: pred = <w, x>.
  const Operand pred = cb.Rescale({cb.DotProduct(w, x, nullptr)})[0];
  // Loss gradient dL/dpred for L = (pred - y)^2 is 2*(pred - y).
  const Operand err = cb.Sub({{pred, y}})[0];
  const Operand err_scaled = cb.Mul({{err, cb.Constant(QuantizeValue(2.0 * kLr, qp))}})[0];
  // Update: w' = w - err_scaled * x, exposed publicly.
  std::vector<std::pair<Operand, Operand>> grad_pairs;
  for (int64_t i = 0; i < kDim; ++i) {
    grad_pairs.emplace_back(err_scaled, x[static_cast<size_t>(i)]);
  }
  const std::vector<Operand> grads = cb.Mul(grad_pairs);
  std::vector<std::pair<Operand, Operand>> upd_pairs;
  for (int64_t i = 0; i < kDim; ++i) {
    upd_pairs.emplace_back(w[static_cast<size_t>(i)], grads[static_cast<size_t>(i)]);
  }
  const std::vector<Operand> updated = cb.Sub(upd_pairs);
  for (const Operand& u : updated) {
    cb.ExposePublic(u);
  }
  cb.ExposePublic(pred);

  MockProver mp(&cb.cs(), &cb.assignment());
  if (!mp.IsSatisfied()) {
    std::printf("training circuit unsatisfied!\n");
    return 1;
  }

  auto pcs = MakePcsBackend(PcsKind::kKzg, static_cast<size_t>(1) << opts.k, 5);
  ProvingKey pk = Keygen(cb.cs(), cb.assignment(), *pcs, opts.k);
  const std::vector<uint8_t> proof = CreateProof(pk, *pcs, cb.assignment());

  const std::vector<Fr>& inst = cb.assignment().instance()[0];
  std::vector<std::vector<Fr>> instance = {
      std::vector<Fr>(inst.begin(), inst.begin() + cb.NumInstanceRows())};
  const bool ok = VerifyProof(pk.vk, *pcs, instance, proof).ok();

  std::printf("one SGD step proven: prediction %.3f (target %.3f), proof %zu bytes, %s\n",
              DequantizeValue(pred.q, qp), y_target, proof.size(),
              ok ? "verified" : "REJECTED");
  std::printf("updated weights:");
  for (const Operand& u : updated) {
    std::printf(" %.3f", DequantizeValue(u.q, qp));
  }
  std::printf("\n");
  return ok ? 0 : 1;
}
