#include <cstdio>
#include "src/model/zoo.h"
#include "src/zkml/zkml.h"
using namespace zkml;
int main() {
  Model model = MakeMaskNet();
  ZkmlOptions options;
  options.backend = PcsKind::kKzg;
  options.optimizer.min_columns = 10;
  options.optimizer.max_columns = 24;
  std::printf("optimizing...\n");
  CompiledModel compiled = CompileModel(model, options);
  std::printf("layout %d x 2^%d\n", compiled.layout.num_columns, compiled.layout.k);
  Tensor<int64_t> features = QuantizeTensor(SyntheticInput(model, 500), model.quant);
  std::printf("proving...\n");
  ZkmlProof proof = Prove(compiled, features);
  std::printf("verify=%d\n", (int)Verify(compiled, proof));
  return 0;
}
