// Load generator + wire-protocol fault injector for zkml_serve.
//
// Load mode (default): open a connection per worker and fire prove requests
// at the daemon, reporting proofs/sec and tail latency plus a breakdown of
// every non-OK outcome (overloaded, deadline, ...). With --rate=R requests
// arrive open-loop at R/sec across workers (arrivals do not wait for
// completions, so queue backpressure is actually exercised); --rate=0 runs
// closed-loop.
//
//   zkml_loadgen --port=N [--host=H] [--zoo=mnist-cnn | --model=<file>]
//                [--requests=N] [--workers=N] [--rate=R] [--deadline-ms=N]
//                [--backend=kzg|ipa] [--shards=N] [--timeout-ms=N] [--seed=N]
//                [--out=<file>] [--admin-port=N] [--require-server-match]
//
// --shards=N (>1) asks the daemon for sharded proving: the response then
// carries a zkml.sharded_proof/v1 artifact and reports the shard count the
// server actually used after clamping to what the model's graph admits.
// --batch=N (>1) asks for batched multi-inference proving: each job proves N
// inferences in one circuit and answers with a zkml.batched_proof/v1
// artifact; throughput is reported both as proofs/sec and inferences/sec.
//
// Open-loop latencies are measured from each request's slot on the absolute
// send schedule (not from the moment the sender finally fired), so a
// generator that falls behind cannot hide queueing delay — the classic
// coordinated-omission bug. The scheduled-vs-actual send lag is reported
// and recorded in the artifact alongside the latencies.
//
// --out writes the full run as a JSON artifact (schema "zkml.loadgen/v1").
// --admin-port scrapes the daemon's /metrics page before and after the run
// and prints the server-side view (jobs_completed delta, p50/p99 from the
// serve_job_seconds bucket delta) next to the client-side numbers;
// --require-server-match exits 2 if the server's completed-job count
// disagrees with the client's.
//
// Fault mode (--fault=N): N seeded hostile interactions — truncated frames,
// oversize length prefixes, garbage behind a valid header, corrupt CRCs,
// slowloris byte-trickles, mid-stream disconnects, and ByteMutator-mangled
// valid frames — each followed by a liveness probe on a fresh connection.
// Exits 2 if the daemon ever stops answering or a rejection arrives without
// stage attribution; this is the crash/leak/hang harness CI runs under
// sanitizers.
//
// Exit codes: 0 success, 1 usage/connect failure, 2 assertion failure.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/byte_mutator.h"
#include "src/base/http.h"
#include "src/base/rng.h"
#include "src/model/serialize.h"
#include "src/model/zoo.h"
#include "src/obs/exposition.h"
#include "src/obs/json.h"
#include "src/serve/client.h"

namespace zkml {
namespace {

using serve::FrameType;
using serve::ZkmlClient;

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string zoo = "mnist";
  std::string model_file;
  int requests = 8;
  int workers = 2;
  double rate = 0;  // open-loop arrivals/sec; 0 = closed loop
  uint32_t deadline_ms = 0;
  uint8_t backend = 0;
  int timeout_ms = 120000;
  uint64_t seed = 1;
  int fault = 0;   // >0: run the fault injector with this many interactions
  int shards = 0;  // >1: request sharded proving (server clamps to the graph)
  int batch = 0;   // >1: request batched multi-inference proving per job

  std::string out_file;            // JSON artifact (zkml.loadgen/v1)
  int admin_port = 0;              // >0: scrape /metrics before + after
  bool require_server_match = false;
};

struct Outcomes {
  std::mutex mu;
  std::vector<double> latencies_s;
  // Open-loop only: how late each request actually left relative to its slot
  // on the absolute send schedule (scheduled-vs-actual lag). Nonzero lag
  // means the generator could not sustain the requested rate, so open-loop
  // latencies (measured from the schedule) already include it.
  std::vector<double> send_lags_s;
  uint64_t ok = 0;
  uint64_t inferences = 0;    // proven inferences (ok x batch actually run)
  uint64_t overloaded = 0;
  uint64_t deadline = 0;
  uint64_t other_error = 0;   // explicit error frames other than the above
  uint64_t transport = 0;     // disconnects, timeouts, corrupt responses
  uint64_t cache_hits = 0;
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t i = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

// --- Server-side view via the admin plane ---

// One /metrics scrape, parsed and validated.
StatusOr<obs::PromText> ScrapeMetrics(const std::string& host, int port) {
  ZKML_ASSIGN_OR_RETURN(HttpResponse resp,
                        HttpGet(host, static_cast<uint16_t>(port), "/metrics", 5000));
  if (resp.status_code != 200) {
    return IoError("/metrics answered HTTP " + std::to_string(resp.status_code));
  }
  return obs::ParsePrometheusText(resp.body);
}

double SampleValue(const obs::PromText& page, std::string_view name) {
  const obs::PromSample* s = page.Find(name);
  return s == nullptr ? 0.0 : s->value;
}

// Rebuilds cumulative histogram state for `name` from its _bucket samples
// (page order preserves ascending le; the +Inf bucket lands in the overflow
// slot).
obs::HistogramSnapshot HistogramFromSamples(const obs::PromText& page, const std::string& name) {
  obs::HistogramSnapshot h;
  const std::string bucket_name = name + "_bucket";
  for (const obs::PromSample& s : page.samples) {
    if (s.name != bucket_name) continue;
    const std::string* le = s.LabelValue("le");
    if (le == nullptr) continue;
    if (*le == "+Inf") {
      h.cumulative.push_back(static_cast<uint64_t>(s.value));
    } else {
      h.bounds.push_back(std::strtod(le->c_str(), nullptr));
      h.cumulative.push_back(static_cast<uint64_t>(s.value));
    }
  }
  if (!h.cumulative.empty()) h.count = h.cumulative.back();
  h.sum = SampleValue(page, name + "_sum");
  return h;
}

// after - before, bucket-wise. Empty when the scrapes do not line up.
obs::HistogramSnapshot HistogramDelta(const obs::HistogramSnapshot& before,
                                      const obs::HistogramSnapshot& after) {
  obs::HistogramSnapshot d;
  if (before.bounds != after.bounds || before.cumulative.size() != after.cumulative.size()) {
    return after;  // fresh daemon or layout change: the after-state is the run
  }
  d.bounds = after.bounds;
  d.cumulative.resize(after.cumulative.size());
  for (size_t i = 0; i < after.cumulative.size(); ++i) {
    d.cumulative[i] =
        after.cumulative[i] >= before.cumulative[i] ? after.cumulative[i] - before.cumulative[i] : 0;
  }
  d.count = d.cumulative.empty() ? 0 : d.cumulative.back();
  d.sum = after.sum - before.sum;
  return d;
}

int RunLoad(const LoadgenOptions& opt, const std::string& model_text) {
  Outcomes out;
  std::atomic<int> next_request{0};

  // Pre-run scrape: against a long-lived daemon only the delta across this
  // run is ours, so both the counter and the latency buckets are differenced.
  bool scraped = false;
  obs::PromText before;
  if (opt.admin_port > 0) {
    StatusOr<obs::PromText> page = ScrapeMetrics(opt.host, opt.admin_port);
    if (page.ok()) {
      before = std::move(*page);
      scraped = true;
    } else {
      std::fprintf(stderr, "pre-run /metrics scrape failed: %s\n",
                   page.status().ToString().c_str());
    }
  }

  const auto t0 = std::chrono::steady_clock::now();

  auto worker = [&](int wid) {
    StatusOr<ZkmlClient> client = ZkmlClient::Connect(opt.host, opt.port, opt.timeout_ms);
    if (!client.ok()) {
      std::lock_guard<std::mutex> lock(out.mu);
      out.transport += 1;
      return;
    }
    for (;;) {
      const int i = next_request.fetch_add(1);
      if (i >= opt.requests) return;
      std::chrono::steady_clock::time_point due{};
      if (opt.rate > 0) {
        // Open-loop: request i is due at i/rate seconds on an ABSOLUTE
        // schedule anchored at t0; sleep until then and fire regardless of
        // how many are still in flight elsewhere.
        due = t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(static_cast<double>(i) / opt.rate));
        std::this_thread::sleep_until(due);
      }
      serve::ProveRequest req;
      req.model_text = model_text;
      req.backend = opt.backend;
      req.deadline_ms = opt.deadline_ms;
      req.seed = opt.seed + static_cast<uint64_t>(i);
      req.shards = opt.shards > 0 ? static_cast<uint32_t>(opt.shards) : 0;
      req.batch = opt.batch > 0 ? static_cast<uint32_t>(opt.batch) : 0;
      const auto start = std::chrono::steady_clock::now();
      // Open-loop latency is measured from the SCHEDULED send time, not from
      // `start`: when this thread falls behind its slots (a slow proof ahead
      // of this request on the same connection), measuring from the actual
      // send would silently drop that queueing delay from the tail — the
      // coordinated-omission mistake. The scheduled-vs-actual gap is also
      // recorded on its own so the artifact shows whether the generator
      // sustained the requested rate.
      const auto latency_origin = opt.rate > 0 ? due : start;
      const double send_lag_s =
          opt.rate > 0
              ? std::max(0.0, std::chrono::duration<double>(start - due).count())
              : 0.0;
      StatusOr<ZkmlClient::ProveOutcome> result =
          client->Prove(req, static_cast<uint64_t>(i) + 1, opt.timeout_ms);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - latency_origin)
              .count();
      std::lock_guard<std::mutex> lock(out.mu);
      if (opt.rate > 0) out.send_lags_s.push_back(send_lag_s);
      if (!result.ok()) {
        out.transport += 1;
        // The connection is unusable after a transport error; reconnect.
        client = ZkmlClient::Connect(opt.host, opt.port, opt.timeout_ms);
        if (!client.ok()) return;
        continue;
      }
      if (result->ok) {
        out.ok += 1;
        out.inferences += std::max<uint32_t>(1, result->response.batch);
        out.cache_hits += result->response.cache_hit;
        out.latencies_s.push_back(secs);
      } else if (result->error.code == serve::WireErrorCode::kOverloaded) {
        out.overloaded += 1;
      } else if (result->error.code == serve::WireErrorCode::kDeadlineExceeded) {
        out.deadline += 1;
      } else {
        out.other_error += 1;
        std::fprintf(stderr, "worker %d request %d rejected: %s\n", wid, i,
                     result->error.ToString().c_str());
      }
    }
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < opt.workers; ++w) threads.emplace_back(worker, w);
  for (auto& t : threads) t.join();

  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::lock_guard<std::mutex> lock(out.mu);
  std::printf("loadgen: %d requests in %.2fs (%d workers, %s)\n", opt.requests, wall,
              opt.workers, opt.rate > 0 ? "open-loop" : "closed-loop");
  std::printf("  ok=%llu overloaded=%llu deadline=%llu error=%llu transport=%llu cache_hits=%llu\n",
              static_cast<unsigned long long>(out.ok),
              static_cast<unsigned long long>(out.overloaded),
              static_cast<unsigned long long>(out.deadline),
              static_cast<unsigned long long>(out.other_error),
              static_cast<unsigned long long>(out.transport),
              static_cast<unsigned long long>(out.cache_hits));
  const double p50 = Percentile(out.latencies_s, 0.5);
  const double p90 = Percentile(out.latencies_s, 0.9);
  const double p99 = Percentile(out.latencies_s, 0.99);
  const double pmax = Percentile(out.latencies_s, 1.0);
  if (!out.latencies_s.empty()) {
    std::printf("  client: proofs/sec=%.3f inferences/sec=%.3f p50=%.3fs p90=%.3fs p99=%.3fs max=%.3fs\n",
                static_cast<double>(out.ok) / wall,
                static_cast<double>(out.inferences) / wall, p50, p90, p99, pmax);
  }
  double lag_mean = 0, lag_p99 = 0, lag_max = 0;
  if (!out.send_lags_s.empty()) {
    for (double s : out.send_lags_s) lag_mean += s;
    lag_mean /= static_cast<double>(out.send_lags_s.size());
    lag_p99 = Percentile(out.send_lags_s, 0.99);
    lag_max = Percentile(out.send_lags_s, 1.0);
    std::printf("  schedule: send lag mean=%.4fs p99=%.4fs max=%.4fs "
                "(scheduled-vs-actual; latencies measured from the schedule)\n",
                lag_mean, lag_p99, lag_max);
  }

  // Post-run scrape: the server's own account of the same run.
  bool server_view = false;
  bool server_match = true;
  uint64_t server_completed = 0;
  obs::HistogramSnapshot server_hist;
  if (scraped) {
    StatusOr<obs::PromText> page = ScrapeMetrics(opt.host, opt.admin_port);
    if (page.ok()) {
      server_view = true;
      const double completed_before = SampleValue(before, "serve_jobs_completed");
      const double completed_after = SampleValue(*page, "serve_jobs_completed");
      server_completed = static_cast<uint64_t>(completed_after - completed_before);
      server_hist = HistogramDelta(HistogramFromSamples(before, "serve_job_seconds"),
                                   HistogramFromSamples(*page, "serve_job_seconds"));
      std::printf("  server: jobs_completed=%llu p50=%.3fs p99=%.3fs "
                  "(from serve_job_seconds bucket delta)\n",
                  static_cast<unsigned long long>(server_completed),
                  obs::HistogramQuantile(server_hist, 0.5),
                  obs::HistogramQuantile(server_hist, 0.99));
      if (server_completed != out.ok) {
        server_match = false;
        std::fprintf(stderr,
                     "loadgen: server counted %llu completed jobs, client saw %llu OK responses\n",
                     static_cast<unsigned long long>(server_completed),
                     static_cast<unsigned long long>(out.ok));
      }
    } else {
      std::fprintf(stderr, "post-run /metrics scrape failed: %s\n",
                   page.status().ToString().c_str());
    }
  }

  if (!opt.out_file.empty()) {
    obs::Json doc = obs::Json::Object();
    doc.Set("schema", "zkml.loadgen/v1");
    doc.Set("requests", static_cast<uint64_t>(opt.requests));
    doc.Set("workers", static_cast<uint64_t>(opt.workers));
    doc.Set("rate_per_sec", opt.rate);
    doc.Set("backend", opt.backend == 1 ? "ipa" : "kzg");
    doc.Set("shards", static_cast<uint64_t>(opt.shards > 0 ? opt.shards : 0));
    doc.Set("batch", static_cast<uint64_t>(opt.batch > 0 ? opt.batch : 0));
    doc.Set("deadline_ms", static_cast<uint64_t>(opt.deadline_ms));
    doc.Set("wall_s", wall);
    obs::Json outcomes = obs::Json::Object();
    outcomes.Set("ok", out.ok);
    outcomes.Set("inferences", out.inferences);
    outcomes.Set("overloaded", out.overloaded);
    outcomes.Set("deadline", out.deadline);
    outcomes.Set("other_error", out.other_error);
    outcomes.Set("transport", out.transport);
    outcomes.Set("cache_hits", out.cache_hits);
    doc.Set("outcomes", std::move(outcomes));
    obs::Json client = obs::Json::Object();
    client.Set("proofs_per_sec", wall > 0 ? static_cast<double>(out.ok) / wall : 0.0);
    client.Set("inferences_per_sec",
               wall > 0 ? static_cast<double>(out.inferences) / wall : 0.0);
    client.Set("p50_s", p50);
    client.Set("p90_s", p90);
    client.Set("p99_s", p99);
    client.Set("max_s", pmax);
    obs::Json lat = obs::Json::Array();
    for (double s : out.latencies_s) lat.Append(s);
    client.Set("latencies_s", std::move(lat));
    doc.Set("client", std::move(client));
    if (opt.rate > 0) {
      // Scheduled-vs-actual send lag: nonzero means open-loop latencies
      // already carry generator-side queueing (measured from the schedule).
      obs::Json sched = obs::Json::Object();
      sched.Set("send_lag_mean_s", lag_mean);
      sched.Set("send_lag_p99_s", lag_p99);
      sched.Set("send_lag_max_s", lag_max);
      sched.Set("latency_origin", "scheduled");
      doc.Set("schedule", std::move(sched));
    }
    if (server_view) {
      obs::Json server = obs::Json::Object();
      server.Set("jobs_completed", server_completed);
      server.Set("p50_s", obs::HistogramQuantile(server_hist, 0.5));
      server.Set("p99_s", obs::HistogramQuantile(server_hist, 0.99));
      server.Set("matches_client", server_match);
      doc.Set("server", std::move(server));
    }
    std::ofstream f(opt.out_file);
    f << doc.DumpPretty() << "\n";
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.out_file.c_str());
      return 1;
    }
  }

  if (opt.require_server_match && (!server_view || !server_match)) {
    std::fprintf(stderr, "loadgen: --require-server-match failed (%s)\n",
                 server_view ? "count mismatch" : "scrape unavailable");
    return 2;
  }
  return out.ok > 0 || opt.requests == 0 ? 0 : 2;
}

// --- Fault injection ---

// A valid prove-request frame to use as mutation raw material (tiny bogus
// model text keeps it cheap: the server rejects it in model-parse, which is
// still a full exercise of the framing + admission path).
std::vector<uint8_t> TemplateFrame(uint64_t request_id) {
  serve::ProveRequest req;
  req.model_text = "not a model";
  std::vector<uint8_t> frame;
  serve::EncodeFrame(&frame, FrameType::kProveRequest, request_id, serve::EncodeProveRequest(req));
  return frame;
}

// One hostile interaction. Returns false only on local failure to connect
// (the liveness check decides whether the server survived).
bool InjectOne(const LoadgenOptions& opt, Rng& rng, ByteMutator& mutator, int kind,
               uint64_t* stage_attributed, uint64_t* error_frames) {
  StatusOr<ZkmlClient> client = ZkmlClient::Connect(opt.host, opt.port, 2000);
  if (!client.ok()) return false;
  Socket& sock = client->socket();
  std::vector<uint8_t> frame = TemplateFrame(rng.NextU64());

  switch (kind) {
    case 0:  // truncated frame, then disconnect
      mutator.Truncate(&frame);
      (void)sock.WriteFull(frame.data(), frame.size(), 2000);
      return true;  // close without reading: server must not block or leak
    case 1: {  // oversize length prefix (claims > max_frame_bytes)
      const uint32_t huge = 0xf0000000u;
      for (int i = 0; i < 4; ++i) frame[16 + i] = static_cast<uint8_t>(huge >> (8 * i));
      break;
    }
    case 2: {  // garbage behind a valid header: corrupt payload, keep length
      for (size_t i = serve::kFrameHeaderSize; i < frame.size(); ++i) {
        frame[i] = static_cast<uint8_t>(rng.NextU64());
      }
      break;
    }
    case 3:  // corrupt CRC field only
      frame[20 + rng.NextBelow(4)] ^= 0xff;
      break;
    case 4: {  // slowloris: trickle a prefix byte-by-byte, then hang up
      const size_t n = std::min<size_t>(frame.size(), 1 + rng.NextBelow(40));
      for (size_t i = 0; i < n; ++i) {
        if (!sock.WriteFull(frame.data() + i, 1, 500).ok()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1 + rng.NextBelow(5)));
      }
      return true;
    }
    case 5:  // random garbage, no structure at all
      frame.resize(1 + rng.NextBelow(64));
      for (auto& b : frame) b = static_cast<uint8_t>(rng.NextU64());
      break;
    case 6:  // mid-stream disconnect: header only, then close
      (void)sock.WriteFull(frame.data(), serve::kFrameHeaderSize, 2000);
      return true;
    default: {  // ByteMutator-mangled valid frame
      for (uint64_t m = 0, n = 1 + rng.NextBelow(3); m < n; ++m) {
        switch (rng.NextBelow(4)) {
          case 0: mutator.FlipBit(&frame); break;
          case 1: mutator.Truncate(&frame); break;
          case 2: mutator.Extend(&frame); break;
          default: mutator.Garbage(&frame); break;
        }
      }
      break;
    }
  }

  if (!frame.empty()) {
    (void)sock.WriteFull(frame.data(), frame.size(), 2000);
  }
  // A structurally broken frame earns an error frame before the server hangs
  // up. Mutations can also yield accidentally-valid frames (or prefixes the
  // server is still waiting on), so a read timeout here is not a failure —
  // the liveness probe is the real assertion.
  StatusOr<std::pair<serve::FrameHeader, std::vector<uint8_t>>> reply =
      client->ReadFrame(3000);
  if (reply.ok() && reply->first.type == FrameType::kError) {
    *error_frames += 1;
    StatusOr<serve::WireError> err = serve::DecodeWireError(reply->second);
    if (err.ok()) {
      *stage_attributed += 1;  // stage enum decoded: the rejection names its stage
    }
  }
  return true;
}

int RunFaults(const LoadgenOptions& opt) {
  Rng rng(opt.seed);
  ByteMutator mutator(&rng);
  uint64_t error_frames = 0, stage_attributed = 0, connect_failures = 0;
  for (int i = 0; i < opt.fault; ++i) {
    const int kind = static_cast<int>(rng.NextBelow(8));
    if (!InjectOne(opt, rng, mutator, kind, &stage_attributed, &error_frames)) {
      ++connect_failures;
    }
    // Liveness probe: the daemon must still answer a well-formed ping.
    StatusOr<ZkmlClient> probe = ZkmlClient::Connect(opt.host, opt.port, 2000);
    if (!probe.ok() || !probe->Ping(static_cast<uint64_t>(i) + 1, 3000).ok()) {
      std::fprintf(stderr, "FAULT INJECTOR: daemon unresponsive after interaction %d (kind %d)\n",
                   i, kind);
      return 2;
    }
  }
  std::printf("fault injector: %d hostile interactions, %llu explicit error frames "
              "(%llu stage-attributed), %llu connect failures, daemon alive throughout\n",
              opt.fault, static_cast<unsigned long long>(error_frames),
              static_cast<unsigned long long>(stage_attributed),
              static_cast<unsigned long long>(connect_failures));
  if (stage_attributed != error_frames) {
    std::fprintf(stderr, "FAULT INJECTOR: %llu error frames lacked stage attribution\n",
                 static_cast<unsigned long long>(error_frames - stage_attributed));
    return 2;
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: zkml_loadgen --port=N [--host=H] [--zoo=mnist | --model=<file>]\n"
               "                    [--requests=N] [--workers=N] [--rate=R] [--deadline-ms=N]\n"
               "                    [--backend=kzg|ipa] [--shards=N] [--batch=N] [--timeout-ms=N] [--seed=N] [--fault=N]\n"
               "                    [--out=<file>] [--admin-port=N] [--require-server-match]\n");
  return 1;
}

int Main(int argc, char** argv) {
  LoadgenOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* name) -> const char* {
      const std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size() : nullptr;
    };
    if (const char* v = val("host")) opt.host = v;
    else if (const char* v = val("port")) opt.port = static_cast<uint16_t>(std::atoi(v));
    else if (const char* v = val("zoo")) opt.zoo = v;
    else if (const char* v = val("model")) opt.model_file = v;
    else if (const char* v = val("requests")) opt.requests = std::atoi(v);
    else if (const char* v = val("workers")) opt.workers = std::max(1, std::atoi(v));
    else if (const char* v = val("rate")) opt.rate = std::atof(v);
    else if (const char* v = val("deadline-ms")) opt.deadline_ms = static_cast<uint32_t>(std::atoi(v));
    else if (const char* v = val("backend")) opt.backend = std::strcmp(v, "ipa") == 0 ? 1 : 0;
    else if (const char* v = val("timeout-ms")) opt.timeout_ms = std::atoi(v);
    else if (const char* v = val("seed")) opt.seed = std::strtoull(v, nullptr, 10);
    else if (const char* v = val("fault")) opt.fault = std::atoi(v);
    else if (const char* v = val("shards")) opt.shards = std::atoi(v);
    else if (const char* v = val("batch")) opt.batch = std::atoi(v);
    else if (const char* v = val("out")) opt.out_file = v;
    else if (const char* v = val("admin-port")) opt.admin_port = std::atoi(v);
    else if (arg == "--require-server-match") opt.require_server_match = true;
    else { std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str()); return Usage(); }
  }
  if (opt.port == 0) return Usage();

  if (opt.fault > 0) {
    return RunFaults(opt);
  }

  std::string model_text;
  if (!opt.model_file.empty()) {
    StatusOr<Model> model = LoadModelFromFile(opt.model_file);
    if (!model.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", opt.model_file.c_str(),
                   model.status().ToString().c_str());
      return 1;
    }
    model_text = SerializeModel(*model);
  } else {
    // MakeZooModel aborts on unknown names (it is for internal callers);
    // flag input gets the membership check first.
    for (const Model& m : AllZooModels()) {
      if (m.name == opt.zoo) model_text = SerializeModel(m);
    }
    if (model_text.empty()) {
      std::fprintf(stderr, "unknown zoo model '%s'\n", opt.zoo.c_str());
      return 1;
    }
  }
  return RunLoad(opt, model_text);
}

}  // namespace
}  // namespace zkml

int main(int argc, char** argv) { return zkml::Main(argc, argv); }
