// Trustless credit scoring (paper §2): a lender publishes a committed DLRM
// scoring model; the borrower's on-chain feature summary is scored and the
// lender proves the score came from the committed model, so both sides trust
// the result without the weights ever leaving the lender.
//
//   $ ./examples/credit_score
#include <cstdio>

#include "src/model/zoo.h"
#include "src/zkml/zkml.h"

int main() {
  using namespace zkml;

  Model model = MakeDlrm();
  ZkmlOptions options;
  options.backend = PcsKind::kIpa;  // transparent setup: no trusted ceremony
  options.optimizer.min_columns = 8;
  options.optimizer.max_columns = 20;
  CompiledModel compiled = CompileModel(model, options);
  std::printf("[lender] DLRM scorer committed (IPA backend, %d cols x 2^%d rows)\n",
              compiled.layout.num_columns, compiled.layout.k);

  // Three loan applicants; features = dense on-chain summary + embeddings.
  bool all_valid = true;
  for (int applicant = 0; applicant < 3; ++applicant) {
    Tensor<int64_t> features =
        QuantizeTensor(SyntheticInput(model, 900 + applicant), model.quant);
    ZkmlProof proof = Prove(compiled, features);
    const double score = DequantizeValue(proof.output_q.flat(0), model.quant);
    const bool valid = Verify(compiled, proof);
    all_valid = all_valid && valid;
    std::printf("[applicant %d] credit score %.3f | proof %zu bytes %s | %s\n", applicant, score,
                proof.bytes.size(), valid ? "(verified)" : "(INVALID)",
                score > 0.5 ? "loan approved" : "loan denied");
  }
  return all_valid ? 0 : 1;
}
