// Private biometric authentication (paper §2): a user proves their fresh face
// embedding is close to the enrolled template *without revealing the
// template*. The template lives in the model weights; the verifier only sees
// the fresh embedding (public input) and the match score (public output).
//
//   $ ./examples/biometric_auth
#include <cstdio>

#include "src/base/rng.h"
#include "src/model/model_builder.h"
#include "src/zkml/zkml.h"

int main() {
  using namespace zkml;
  constexpr int64_t kDim = 16;

  // Enrolled template (private!).
  Rng rng(321);
  std::vector<float> enrolled(kDim);
  for (float& v : enrolled) {
    v = static_cast<float>(rng.NextGaussian() * 0.5);
  }

  // Matcher model: diff = template - x (an FC layer with W = -I, b = template),
  // dist = mean(diff^2), score = sigmoid(threshold_margin - gain * dist).
  QuantParams quant;
  quant.sf_bits = 6;
  quant.table_bits = 12;
  ModelBuilder mb("face-matcher", Shape({kDim}), quant, 1);
  int diff = mb.FullyConnected(mb.input(), kDim);
  int sq = mb.Mul(diff, diff);
  int dist = mb.Mean(mb.Reshape(sq, Shape({1, kDim})));  // [1]
  int logit = mb.FullyConnected(dist, 1);
  int score = mb.Activation(logit, NonlinFn::kSigmoid);
  Model model = mb.Finish(score);
  // Install the matcher weights: W = -I, b = enrolled template.
  for (int64_t i = 0; i < kDim; ++i) {
    for (int64_t j = 0; j < kDim; ++j) {
      model.weights[0].at({i, j}) = i == j ? -1.0f : 0.0f;
    }
    model.weights[1].at({i}) = enrolled[static_cast<size_t>(i)];
  }
  model.weights[2].at({0, 0}) = -24.0f;  // gain
  model.weights[3].at({0}) = 1.5f;       // threshold margin

  ZkmlOptions options;
  options.optimizer.min_columns = 8;
  options.optimizer.max_columns = 20;
  CompiledModel compiled = CompileModel(model, options);
  std::printf("matcher compiled: %d cols x 2^%d rows\n", compiled.layout.num_columns,
              compiled.layout.k);

  auto attempt = [&](const char* who, const std::vector<float>& probe) {
    Tensor<float> x(Shape({kDim}));
    for (int64_t i = 0; i < kDim; ++i) {
      x.flat(i) = probe[static_cast<size_t>(i)];
    }
    ZkmlProof proof = Prove(compiled, QuantizeTensor(x, quant));
    const bool valid = Verify(compiled, proof);
    const double s = DequantizeValue(proof.output_q.flat(0), quant);
    std::printf("%s: score %.3f, proof %s -> %s\n", who, s, valid ? "valid" : "INVALID",
                valid && s > 0.5 ? "AUTHENTICATED" : "DENIED");
    return valid;
  };

  // Genuine attempt: the enrolled face plus sensor noise.
  std::vector<float> genuine = enrolled;
  for (float& v : genuine) {
    v += static_cast<float>(rng.NextGaussian() * 0.05);
  }
  bool ok = attempt("genuine user", genuine);

  // Impostor attempt: an unrelated embedding.
  std::vector<float> impostor(kDim);
  for (float& v : impostor) {
    v = static_cast<float>(rng.NextGaussian() * 0.5);
  }
  ok = attempt("impostor    ", impostor) && ok;

  return ok ? 0 : 1;
}
